"""Shared machinery for the five state-of-the-art baseline testers (§5.4).

Each baseline couples a *random query generator* (no ground truth — that is
precisely the gap GQS fills) with its own oracle.  The generator here is a
single implementation parameterized by a :class:`GeneratorProfile`; the
profiles are tuned per tool so that the complexity comparison of Table 5
(patterns / expression depth / clauses / dependencies) reproduces each
tool's characteristic scale.

The session shape mirrors how these tools actually run: a long-lived session
on one database instance (no restart between graphs — which is why they can
catch the accumulation crashes GQS misses, §5.4.4), periodically loading new
random graphs.  The campaign loop itself lives in
:class:`repro.runtime.CampaignKernel`; this module contributes the
baselines' side of the :class:`TesterProtocol` — the long-session policy,
the profile-driven random query stream, and the per-tool oracle hook
(:meth:`BaselineTester.check_query`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.cypher import ast
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherError, DatabaseCrash, ResourceExhausted
from repro.gdb.engines import GraphDatabase
from repro.graph.generator import GeneratorConfig
from repro.graph.model import PropertyGraph
from repro.runtime.protocol import Judgement, SessionPolicy, TesterProtocol
from repro.runtime.results import BugReport, CampaignResult

__all__ = [
    "GeneratorProfile",
    "RandomQueryGenerator",
    "BaselineTester",
    "run_query_guarded",
]

AnyQuery = Union[ast.Query, ast.UnionQuery]


@dataclass
class GeneratorProfile:
    """Complexity knobs of a baseline's query generator."""

    name: str
    min_clauses: int = 2
    max_clauses: int = 3
    max_patterns_per_match: int = 1
    max_path_length: int = 2
    expression_depth: int = 2
    reuse_probability: float = 0.3      # reference earlier variables
    where_probability: float = 0.8
    unwind_probability: float = 0.0
    with_probability: float = 0.0
    order_by_probability: float = 0.1
    distinct_probability: float = 0.1
    label_probability: float = 0.5
    undirected_probability: float = 0.2
    type_safe: bool = True              # False: may emit runtime-type-unsafe exprs


_FUNCTION_POOL_SAFE = {
    "INTEGER": ["abs", "sign", "toInteger"],
    "FLOAT": ["abs", "round", "floor", "ceil", "toFloat"],
    "STRING": ["toUpper", "toLower", "trim", "reverse", "toString"],
    "ANY": ["coalesce"],
}

# Functions some engines reject — generators that are not dialect-aware
# (the differential baseline) occasionally emit them, which is one organic
# source of false alarms.
_FUNCTION_POOL_UNSAFE = ["cot", "isNaN", "valueType", "atan2", "toStringOrNull"]


class RandomQueryGenerator:
    """Profile-driven random Cypher generation over a concrete graph."""

    def __init__(self, graph: PropertyGraph, rng: random.Random, profile: GeneratorProfile):
        self.graph = graph
        self.rng = rng
        self.profile = profile
        self._var_counter = 0

    # -- public -----------------------------------------------------------

    def generate(self) -> ast.Query:
        """Generate one random query."""
        rng = self.rng
        profile = self.profile
        self._var_counter = 0
        scope: List[str] = []        # variables currently projectable
        element_vars: List[str] = [] # subset bound to nodes/relationships
        clauses: List[ast.Clause] = []

        n_clauses = rng.randint(profile.min_clauses, profile.max_clauses)
        # The last clause is always RETURN; the first is always MATCH.
        body = max(n_clauses - 1, 1)
        for index in range(body):
            roll = rng.random()
            if index == 0 or roll < 0.55 or not scope:
                clause = self._match(scope, element_vars)
            elif roll < 0.55 + profile.unwind_probability:
                clause = self._unwind(scope, element_vars)
            elif roll < 0.55 + profile.unwind_probability + profile.with_probability:
                clause = self._with(scope, element_vars)
            else:
                clause = self._match(scope, element_vars)
            clauses.append(clause)
        clauses.append(self._return(scope, element_vars))
        return ast.Query(tuple(clauses))

    # -- clause builders --------------------------------------------------

    def _fresh_var(self, prefix: str) -> str:
        name = f"{prefix}{self._var_counter}"
        self._var_counter += 1
        return name

    def _match(self, scope: List[str], element_vars: List[str]) -> ast.Match:
        rng = self.rng
        profile = self.profile
        n_patterns = rng.randint(1, profile.max_patterns_per_match)
        patterns = []
        for _ in range(n_patterns):
            patterns.append(self._pattern(scope, element_vars))
        where = None
        if rng.random() < profile.where_probability and element_vars:
            where = self._predicate(element_vars)
        optional = rng.random() < 0.1
        return ast.Match(tuple(patterns), optional=optional, where=where)

    def _pattern(self, scope: List[str], element_vars: List[str]) -> ast.PathPattern:
        """A path pattern following a random walk through the graph."""
        rng = self.rng
        profile = self.profile
        node_ids = list(self.graph.node_ids())
        if not node_ids:
            var = self._fresh_var("n")
            scope.append(var)
            element_vars.append(var)
            return ast.PathPattern((ast.NodePattern(var),))

        length = rng.randint(0, profile.max_path_length)
        current = rng.choice(node_ids)
        nodes = [self._node_pattern(current, scope, element_vars)]
        rels: List[ast.RelationshipPattern] = []
        for _ in range(length):
            touching = self.graph.touching(current)
            if not touching:
                break
            rel = rng.choice(touching)
            far = rel.other_end(current)
            rels.append(self._rel_pattern(rel, rel.start == current))
            nodes.append(self._node_pattern(far, scope, element_vars))
            current = far
        return ast.PathPattern(tuple(nodes), tuple(rels))

    def _node_pattern(self, node_id: int, scope: List[str], element_vars: List[str]) -> ast.NodePattern:
        rng = self.rng
        profile = self.profile
        if element_vars and rng.random() < profile.reuse_probability:
            var = rng.choice(element_vars)
        else:
            var = self._fresh_var("n")
            scope.append(var)
            element_vars.append(var)
        labels: Tuple[str, ...] = ()
        node = self.graph.node(node_id)
        if node.labels and rng.random() < profile.label_probability:
            labels = (rng.choice(sorted(node.labels)),)
        return ast.NodePattern(var, labels)

    def _rel_pattern(self, rel, forward: bool) -> ast.RelationshipPattern:
        rng = self.rng
        profile = self.profile
        var = self._fresh_var("r")
        types: Tuple[str, ...] = ()
        if rng.random() < profile.label_probability:
            types = (rel.type,)
        if rng.random() < profile.undirected_probability:
            direction = ast.BOTH
        else:
            direction = ast.OUT if forward else ast.IN
        return ast.RelationshipPattern(var, types, direction)

    def _unwind(self, scope: List[str], element_vars: List[str]) -> ast.Unwind:
        rng = self.rng
        alias = self._fresh_var("u")
        items = tuple(
            ast.Literal(rng.randint(-100, 100)) for _ in range(rng.randint(1, 3))
        )
        scope.append(alias)
        return ast.Unwind(ast.ListLiteral(items), alias)

    def _with(self, scope: List[str], element_vars: List[str]) -> ast.With:
        rng = self.rng
        keep = [var for var in scope if rng.random() < 0.8] or scope[:1]
        items = tuple(ast.ProjectionItem(ast.Variable(var)) for var in keep)
        scope[:] = list(keep)
        element_vars[:] = [var for var in element_vars if var in keep]
        where = None
        if element_vars and rng.random() < 0.3:
            where = self._predicate(element_vars)
        distinct = rng.random() < self.profile.distinct_probability
        return ast.With(items, distinct=distinct, where=where)

    def _return(self, scope: List[str], element_vars: List[str]) -> ast.Return:
        rng = self.rng
        profile = self.profile
        n_items = rng.randint(1, max(1, min(3, len(scope)) if scope else 1))
        items = []
        for index in range(n_items):
            expr = self._expression(element_vars, profile.expression_depth)
            items.append(ast.ProjectionItem(expr, f"c{index}"))
        order_by: Tuple[ast.OrderItem, ...] = ()
        if rng.random() < profile.order_by_probability:
            order_by = (
                ast.OrderItem(ast.Variable("c0"), rng.random() < 0.5),
            )
        distinct = rng.random() < profile.distinct_probability
        limit = None
        if rng.random() < 0.1:
            limit = ast.Literal(rng.randint(1, 10))
        return ast.Return(tuple(items), distinct=distinct, order_by=order_by, limit=limit)

    # -- expressions --------------------------------------------------------

    def _property_access(self, element_vars: List[str]) -> ast.Expression:
        rng = self.rng
        var = rng.choice(element_vars)
        # Property names are drawn from the graph's actual keys so accesses
        # frequently hit real values.
        keys = sorted({key.name for key in self.graph.all_property_keys()})
        name = rng.choice(keys) if keys else "id"
        return ast.PropertyAccess(ast.Variable(var), name)

    def _expression(self, element_vars: List[str], depth: int) -> ast.Expression:
        rng = self.rng
        if depth <= 0 or not element_vars or rng.random() < 0.25:
            return self._leaf(element_vars)
        roll = rng.random()
        if roll < 0.4:
            op = rng.choice(["+", "-", "*", "%"])
            return ast.Binary(
                op,
                self._expression(element_vars, depth - 1),
                self._expression(element_vars, depth - 1),
            )
        if roll < 0.6:
            pools = _FUNCTION_POOL_SAFE["INTEGER"] + _FUNCTION_POOL_SAFE["STRING"]
            if not self.profile.type_safe and rng.random() < 0.1:
                name = rng.choice(_FUNCTION_POOL_UNSAFE)
            else:
                name = rng.choice(pools)
            return ast.FunctionCall(
                name, (self._expression(element_vars, depth - 1),)
            )
        if roll < 0.8:
            return ast.CaseExpression(
                None,
                (
                    ast.CaseAlternative(
                        self._comparison(element_vars, depth - 1),
                        self._expression(element_vars, depth - 1),
                    ),
                ),
                self._leaf(element_vars),
            )
        return self._comparison(element_vars, depth - 1)

    def _comparison(self, element_vars: List[str], depth: int) -> ast.Expression:
        rng = self.rng
        left = (
            self._property_access(element_vars)
            if element_vars
            else self._leaf(element_vars)
        )
        if rng.random() < 0.18:
            # String predicates appear in every tool's corpus.
            op = rng.choice(["STARTS WITH", "ENDS WITH", "CONTAINS"])
            alphabet = "abcdefgh"
            fragment = "".join(
                rng.choice(alphabet) for _ in range(rng.randint(1, 3))
            )
            return ast.Binary(op, left, ast.Literal(fragment))
        op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        right = self._expression(element_vars, max(depth - 1, 0))
        return ast.Binary(op, left, right)

    def _predicate(self, element_vars: List[str]) -> ast.Expression:
        rng = self.rng
        terms = [self._comparison(element_vars, self.profile.expression_depth - 1)]
        while rng.random() < 0.35:
            terms.append(
                self._comparison(element_vars, self.profile.expression_depth - 1)
            )
        expr = terms[0]
        for term in terms[1:]:
            connective = rng.choice(["AND", "OR"])
            expr = ast.Binary(connective, expr, term)
        if rng.random() < 0.15:
            expr = ast.Unary("NOT", expr)
        return expr

    def _leaf(self, element_vars: List[str]) -> ast.Expression:
        rng = self.rng
        roll = rng.random()
        if element_vars and roll < 0.5:
            return self._property_access(element_vars)
        if roll < 0.7:
            return ast.Literal(rng.randint(-1000, 1000))
        if roll < 0.8:
            return ast.Literal(rng.random() < 0.5)
        if roll < 0.95:
            alphabet = "abcdefgh123"
            return ast.Literal(
                "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 6)))
            )
        return ast.Literal(None)


def run_query_guarded(
    engine: GraphDatabase, query: AnyQuery
) -> Tuple[Optional[ResultSet], Optional[Exception]]:
    """Execute, capturing engine errors instead of raising."""
    try:
        return engine.execute(query), None
    except (DatabaseCrash, ResourceExhausted, CypherError) as exc:
        return None, exc


def run_and_observe(engine: GraphDatabase, query: AnyQuery):
    """Execute and also report which fault (if any) fired.

    Returns ``(result, exception, fault)``.  Testers must collect the fault
    per variant: attribution via ``engine.last_fired_fault`` after the last
    variant would miss faults that fired only on earlier variants.
    """
    result, exc = run_query_guarded(engine, query)
    return result, exc, engine.last_fired_fault


class BaselineTester(TesterProtocol):
    """Common :class:`TesterProtocol` for the metamorphic/differential tools.

    Subclasses provide ``profile`` and :meth:`check_query`, which runs the
    tool's oracle for a single generated query and returns a report (or
    None).  Replay support (:meth:`replay_flags_bug`) drives the §5.4.3
    oracle-effectiveness comparison, where each baseline's oracle is fed
    GQS's bug-triggering queries.
    """

    name = "baseline"
    profile = GeneratorProfile(name="baseline")
    queries_per_graph = 20
    # Continuous session: only the very first load restarts (§5.4.4).
    session = SessionPolicy.long_session()

    def __init__(self, generator_config: Optional[GeneratorConfig] = None):
        self.generator_config = generator_config or GeneratorConfig()

    # -- TesterProtocol ------------------------------------------------------

    def proposals(
        self, engine: GraphDatabase, graph, schema, rng: random.Random
    ) -> Iterator[AnyQuery]:
        qgen = RandomQueryGenerator(graph, rng, self.profile)
        for _ in range(self.queries_per_graph):
            yield qgen.generate()

    def judge(
        self,
        engine: GraphDatabase,
        query: AnyQuery,
        graph,
        rng: random.Random,
        result: CampaignResult,
    ) -> Judgement:
        return Judgement(report=self.check_query(engine, query, rng, result))

    # -- per-query oracle (subclass responsibility) -------------------------

    def check_query(
        self,
        engine: GraphDatabase,
        query: AnyQuery,
        rng: random.Random,
        result: CampaignResult,
    ) -> Optional[BugReport]:
        raise NotImplementedError

    def replay_flags_bug(
        self, engine: GraphDatabase, query: AnyQuery, rng: random.Random
    ) -> bool:
        """Whether this tool's oracle flags *query* (§5.4.3 replay)."""
        scratch = CampaignResult(self.name, engine.name)
        report = self.check_query(engine, query, rng, scratch)
        return report is not None

    # -- shared helpers ------------------------------------------------------

    def _error_report(
        self,
        engine: GraphDatabase,
        query_text: str,
        exc: Exception,
        sim_time: float,
    ) -> BugReport:
        fault = engine.last_fired_fault
        return BugReport(
            tester=self.name,
            engine=engine.name,
            kind="error",
            detail=f"{type(exc).__name__}: {exc}",
            query_text=query_text,
            fault_id=fault.fault_id if fault else None,
            sim_time=sim_time,
        )

    @staticmethod
    def _is_hard_failure(exc: Exception) -> bool:
        """Crashes and hangs are bugs for every tool; plain query errors
        (syntax/type/unknown function) are not reported by metamorphic
        testers."""
        return isinstance(exc, (DatabaseCrash, ResourceExhausted))
