"""GDBMeter: ternary-logic query partitioning (Kamm et al., ISSTA '23).

GDBMeter generates a query whose MATCH carries a predicate ``P`` and checks
the TLP metamorphic relation:

    R(P)  ∪  R(NOT P)  ∪  R(P IS NULL)   ==   R(TRUE)

Any violation indicates a bug.  The oracle "can be used only to filter
clauses like WHERE" (paper §1), which bounds both the generator's complexity
and the detectable bug classes: a fault that perturbs all four partitions
identically — like the Memgraph WITH-projection bug of Figure 16 — passes
the union check and goes unnoticed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.baselines.common import (
    BaselineTester,
    GeneratorProfile,
    run_and_observe,
    run_query_guarded,
)
from repro.core.runner import BugReport, CampaignResult
from repro.cypher import ast
from repro.cypher.printer import print_query
from repro.engine.binding import ResultSet
from repro.gdb.engines import GraphDatabase
from repro.runtime.protocol import SessionPolicy

__all__ = ["GDBMeterTester", "partition_query"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


def partition_query(query: AnyQuery) -> Optional[List[AnyQuery]]:
    """Build the TLP partitions [Q(P), Q(NOT P), Q(P IS NULL), Q(TRUE)].

    Partitions the predicate of the first ``MATCH ... WHERE`` clause; returns
    None when the query carries no partitionable predicate (UNION queries
    and WHERE-less queries are out of scope for TLP).
    """
    if isinstance(query, ast.UnionQuery):
        return None
    target_index: Optional[int] = None
    for index, clause in enumerate(query.clauses):
        if (
            isinstance(clause, ast.Match)
            and clause.where is not None
            and not clause.optional
        ):
            target_index = index
            break
    if target_index is None:
        return None

    # The partition-union relation is row-wise: it breaks under anything
    # that observes the whole row set downstream of the partitioned MATCH
    # (DISTINCT, LIMIT/SKIP, aggregation) and under OPTIONAL matching.
    # GDBMeter's generator avoids those constructs; when replaying foreign
    # queries the oracle is simply inapplicable.
    from repro.engine.evaluator import has_aggregate

    for clause in query.clauses[target_index:]:
        if isinstance(clause, (ast.With, ast.Return)):
            if clause.distinct or clause.limit is not None or clause.skip is not None:
                return None
            if any(has_aggregate(item.expression) for item in clause.items):
                return None

    def replace_where(predicate: ast.Expression) -> ast.Query:
        clauses = list(query.clauses)
        original = clauses[target_index]
        clauses[target_index] = ast.Match(
            original.patterns, original.optional, predicate
        )
        return ast.Query(tuple(clauses))

    predicate = query.clauses[target_index].where
    return [
        query,
        replace_where(ast.Unary("NOT", predicate)),
        replace_where(ast.IsNull(predicate)),
        replace_where(ast.Literal(True)),
    ]


class GDBMeterTester(BaselineTester):
    """TLP-based metamorphic tester."""

    name = "GDBMeter"
    # Declared explicitly (new policy-object API): one long-lived session.
    session = SessionPolicy.long_session()
    # Single MATCH-WHERE-RETURN queries (Table 5: 0.86 patterns, depth 2.24,
    # 1.94 clauses, 1.97 dependencies).
    profile = GeneratorProfile(
        name="GDBMeter",
        min_clauses=2,
        max_clauses=2,
        max_patterns_per_match=1,
        max_path_length=1,
        expression_depth=2,
        reuse_probability=0.25,
        where_probability=0.95,
        order_by_probability=0.05,
        distinct_probability=0.05,
    )
    supported_engines = ("neo4j", "falkordb", "kuzu")  # no Memgraph support

    def check_query(
        self,
        engine: GraphDatabase,
        query: AnyQuery,
        rng: random.Random,
        result: CampaignResult,
    ) -> Optional[BugReport]:
        partitions = partition_query(query)
        if partitions is None:
            # Execute once anyway (hard failures are still bugs).
            result.sim_seconds += engine.cost_of(query)
            _res, exc = run_query_guarded(engine, query)
            if exc is not None and self._is_hard_failure(exc):
                return self._error_report(
                    engine, print_query(query), exc, result.sim_seconds
                )
            return None

        outputs: List[ResultSet] = []
        fired = None
        for variant in partitions:
            result.sim_seconds += engine.cost_of(variant)
            res, exc, fault = run_and_observe(engine, variant)
            fired = fired or fault
            if exc is not None:
                if self._is_hard_failure(exc):
                    return self._error_report(
                        engine, print_query(variant), exc, result.sim_seconds
                    )
                return None  # plain errors void the metamorphic relation
            outputs.append(res)

        union = ResultSet.union_all(outputs[:3])
        reference = outputs[3]
        if union.same_rows(reference):
            return None
        fault = fired
        return BugReport(
            tester=self.name,
            engine=engine.name,
            kind="logic",
            detail="TLP violation: R(P) U R(NOT P) U R(P IS NULL) != R(TRUE)",
            query_text=print_query(query),
            fault_id=fault.fault_id if fault else None,
            sim_time=result.sim_seconds,
        )
