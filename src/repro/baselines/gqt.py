"""GQT: injective and surjective graph query transformation (Jiang et al.,
ICSE '24).

Three transformation families are implemented:

* **Equality (injective + surjective)**: appending a tautological conjunct
  (``AND true``) to a WHERE must preserve the result exactly.
* **Surjective (superset)**: removing the WHERE of a MATCH can only grow
  the result: ``R(Q) ⊆ R(Q')``.
* **Injective (subset)**: adding a random label to an unlabeled pattern
  node can only shrink the result: ``R(Q') ⊆ R(Q)``.  The label is drawn
  randomly from the graph — the source of the "infinitely many
  transformations" the paper notes make GQT's missed-bug count impossible
  to quantify exactly (§5.4.3).

Monotonic relations require the absence of OPTIONAL MATCH, aggregation,
DISTINCT and LIMIT/SKIP; the applicability guard enforces this.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.baselines.common import (
    BaselineTester,
    GeneratorProfile,
    run_and_observe,
)
from repro.core.runner import BugReport, CampaignResult
from repro.cypher import ast
from repro.cypher.printer import print_query
from repro.engine.evaluator import has_aggregate
from repro.gdb.engines import GraphDatabase
from repro.graph.model import PropertyGraph
from repro.runtime.protocol import SessionPolicy

__all__ = [
    "GQTTester",
    "add_tautology",
    "drop_where",
    "add_random_label",
]

AnyQuery = Union[ast.Query, ast.UnionQuery]


def _monotonicity_applicable(query: AnyQuery) -> bool:
    if isinstance(query, ast.UnionQuery):
        return False
    for clause in query.clauses:
        if isinstance(clause, ast.Match) and clause.optional:
            return False
        if isinstance(clause, (ast.With, ast.Return)):
            if clause.limit is not None or clause.skip is not None:
                return False
            if clause.distinct:
                return False
            if any(has_aggregate(item.expression) for item in clause.items):
                return False
    return True


def add_tautology(query: AnyQuery) -> Optional[AnyQuery]:
    """Equality transformation: ``WHERE P`` becomes ``WHERE P AND true``."""
    if isinstance(query, ast.UnionQuery):
        return None
    clauses = list(query.clauses)
    for index, clause in enumerate(clauses):
        if isinstance(clause, ast.Match) and clause.where is not None:
            clauses[index] = ast.Match(
                clause.patterns,
                clause.optional,
                ast.Binary("AND", clause.where, ast.Literal(True)),
            )
            return ast.Query(tuple(clauses))
    return None


def drop_where(query: AnyQuery) -> Optional[AnyQuery]:
    """Surjective transformation: remove a MATCH's WHERE (superset)."""
    if not _monotonicity_applicable(query):
        return None
    assert isinstance(query, ast.Query)
    clauses = list(query.clauses)
    for index, clause in enumerate(clauses):
        if isinstance(clause, ast.Match) and clause.where is not None:
            clauses[index] = ast.Match(clause.patterns, clause.optional, None)
            return ast.Query(tuple(clauses))
    return None


def add_random_label(
    query: AnyQuery, graph: Optional[PropertyGraph], rng: random.Random
) -> Optional[AnyQuery]:
    """Injective transformation: constrain an unlabeled node (subset)."""
    if not _monotonicity_applicable(query):
        return None
    assert isinstance(query, ast.Query)
    labels = graph.labels() if graph is not None else []
    if not labels:
        return None
    clauses = list(query.clauses)
    for clause_index, clause in enumerate(clauses):
        if not isinstance(clause, ast.Match):
            continue
        patterns = list(clause.patterns)
        for pattern_index, pattern in enumerate(patterns):
            nodes = list(pattern.nodes)
            for node_index, node in enumerate(nodes):
                if node.labels:
                    continue
                nodes[node_index] = ast.NodePattern(
                    node.variable, (rng.choice(labels),), node.properties
                )
                patterns[pattern_index] = ast.PathPattern(
                    tuple(nodes), pattern.relationships
                )
                clauses[clause_index] = ast.Match(
                    tuple(patterns), clause.optional, clause.where
                )
                return ast.Query(tuple(clauses))
    return None


class GQTTester(BaselineTester):
    """Injective/surjective transformation tester."""

    name = "GQT"
    # Declared explicitly (new policy-object API): one long-lived session.
    session = SessionPolicy.long_session()
    # Table 5: 1.03 patterns, depth 2.87, 3.39 clauses, 3.43 dependencies.
    profile = GeneratorProfile(
        name="GQT",
        min_clauses=2,
        max_clauses=4,
        max_patterns_per_match=1,
        max_path_length=1,
        expression_depth=3,
        reuse_probability=0.3,
        where_probability=0.8,
        with_probability=0.25,
        label_probability=0.4,
        order_by_probability=0.35,
        distinct_probability=0.0,
    )
    supported_engines = ("neo4j", "falkordb", "kuzu")  # no Memgraph support

    def check_query(
        self,
        engine: GraphDatabase,
        query: AnyQuery,
        rng: random.Random,
        result: CampaignResult,
    ) -> Optional[BugReport]:
        result.sim_seconds += engine.cost_of(query)
        base, exc, fired = run_and_observe(engine, query)
        if exc is not None:
            if self._is_hard_failure(exc):
                return self._error_report(
                    engine, print_query(query), exc, result.sim_seconds
                )
            return None

        checks = [
            (add_tautology(query), "equal",
             "equality violated by tautological conjunct"),
            (drop_where(query), "superset",
             "surjective transformation shrank the result"),
            (add_random_label(query, engine.graph, rng), "subset",
             "injective transformation grew the result"),
        ]
        for variant, relation, detail in checks:
            if variant is None:
                continue
            result.sim_seconds += engine.cost_of(variant)
            res, var_exc, var_fault = run_and_observe(engine, variant)
            fired = fired or var_fault
            if var_exc is not None:
                if self._is_hard_failure(var_exc):
                    return self._error_report(
                        engine, print_query(variant), var_exc, result.sim_seconds
                    )
                continue
            violated = False
            if relation == "equal":
                violated = not base.same_rows(res)
            elif relation == "superset":
                violated = not base.is_sub_bag_of(res)
            else:  # subset
                violated = not res.is_sub_bag_of(base)
            if violated:
                return BugReport(
                    tester=self.name,
                    engine=engine.name,
                    kind="logic",
                    detail=detail,
                    query_text=print_query(query),
                    fault_id=fired.fault_id if fired else None,
                    sim_time=result.sim_seconds,
                )
        return None
