"""Figure 10: bug distribution by synthesis steps, plus throughput.

Shape targets (paper §5.3): ~80% of the bugs are triggered by queries with
at least three synthesis steps; throughput falls with step count (9-step
queries ~6.6x slower than 3-step; Memgraph ~6 q/s and Neo4j ~3 q/s at nine
steps).
"""

import pytest
from conftest import run_once

from repro.experiments import (
    collect_trigger_records,
    figure10,
    figure10_throughput,
    render_kv,
)


def test_figure10_distribution(benchmark, full_campaigns):
    records = run_once(benchmark, collect_trigger_records, full_campaigns)
    series = figure10(records)
    print()
    for engine, counts in series.items():
        compact = {k: v for k, v in counts.items() if v}
        print(render_kv(compact, f"Figure 10 — {engine} bugs by synthesis steps"))

    total = len(records)
    at_least_three = sum(1 for r in records if r["n_steps"] >= 3)
    assert total >= 25
    # Paper: 80% of bugs need >= 3 steps.
    assert at_least_three / total >= 0.7


def test_figure10_throughput(benchmark):
    throughput = run_once(benchmark, figure10_throughput)
    print()
    for engine, series in throughput.items():
        print(render_kv(series, f"Figure 10 — {engine} queries/second by steps"))
    assert throughput["Memgraph"][9] == pytest.approx(6.0, abs=0.1)
    assert throughput["Neo4j"][9] == pytest.approx(3.0, abs=0.1)
    for engine, series in throughput.items():
        assert series[3] / series[9] == pytest.approx(6.6, rel=0.02)
