"""Table 6: bugs detected over a 24-hour(-equivalent) campaign per tool.

The 18-cell (tester × engine) grid runs through
``repro.runtime.ParallelCampaignRunner`` (set ``REPRO_BENCH_JOBS`` to use a
process pool; results are identical for any jobs value).

Shape targets (paper): GQS finds the most bugs overall and per engine;
GDsmith is the strongest baseline; GDBMeter and Gamera find only the
long-session FalkorDB crashes; three tools cannot test Memgraph at all.
"""

from conftest import run_once

from repro.experiments import render_table
from repro.experiments.campaign import split_fault_counts


def test_table6(benchmark, day_campaigns):
    rows, campaigns = run_once(benchmark, lambda: day_campaigns)
    print()
    print(render_table(rows, "Table 6: Bugs detected over a 24-hour-equivalent run"))

    def totals(tool):
        count = logic = 0
        for (name, _engine), result in campaigns.items():
            if name != tool:
                continue
            l, o = split_fault_counts(result.detected_faults)
            count += l + o
            logic += l
        return count, logic

    gqs_total, gqs_logic = totals("GQS")
    # GQS finds the most bugs, mostly logic bugs.
    for tool in ("GDsmith", "GDBMeter", "Gamera", "GQT", "GRev"):
        other_total, _ = totals(tool)
        assert gqs_total > other_total, tool
    assert gqs_logic >= gqs_total - 4

    # The unsupported-engine dashes of the paper.
    by_tester = {row["Tester"]: row for row in rows}
    for tool in ("GDBMeter", "Gamera", "GQT"):
        assert by_tester[tool]["memgraph"] == "-"

    # GQS never raises a false alarm; GDsmith does, in volume (§5.4.3).
    gqs_fps = sum(
        result.false_positive_count
        for (tool, _), result in campaigns.items()
        if tool == "GQS"
    )
    gdsmith_fps = sum(
        result.false_positive_count
        for (tool, _), result in campaigns.items()
        if tool == "GDsmith"
    )
    assert gqs_fps == 0
    assert gdsmith_fps > 50
