"""Table 5: test-query complexity comparison across the six tools.

Shape targets (paper): GQS leads every column — roughly 8 patterns, deep
nesting, ~6.5 clauses, and about twice GRev's cross-clause dependencies;
GDBMeter and Gamera sit at the bottom with ~2-clause queries.
"""

from conftest import run_once

from repro.experiments import render_table, table5


def test_table5(benchmark):
    rows = run_once(benchmark, table5, n_queries=250)
    print()
    print(render_table(rows, "Table 5: Comparison on test query complexity"))

    by_name = {row["Tester"]: row for row in rows}
    gqs = by_name["GQS"]
    # GQS dominates every metric.
    for metric in ("Pattern", "Expression", "Clause", "Dependency"):
        for name, row in by_name.items():
            if name == "GQS":
                continue
            assert gqs[metric] >= row[metric], (metric, name)
    # The baseline ordering of the paper: GRev and GDsmith are the complex
    # baselines; GDBMeter and Gamera the minimal ones.
    assert by_name["GRev"]["Dependency"] > by_name["GDBMeter"]["Dependency"]
    assert by_name["GDsmith"]["Clause"] > by_name["Gamera"]["Clause"]
    # GQS has roughly double GRev's dependencies (paper: 56 vs 28).
    assert gqs["Dependency"] >= 1.4 * by_name["GRev"]["Dependency"]
