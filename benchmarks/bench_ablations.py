"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one of GQS's complexity mechanisms and re-runs a
small campaign against the FalkorDB simulator.  The full synthesizer must
dominate every ablated variant in bugs found — the §5.3 claim that complex
queries are what triggers the bugs.
"""

import random

from conftest import run_once

from repro.core.runner import GQSTester
from repro.cypher.printer import print_query
from repro.experiments import render_table
from repro.gdb import create_engine
from repro.gdb.faults import extract_features
from repro.graph import GraphGenerator

_BUDGET_QUERIES = 450
_GATE_SCALE = 0.04


def _campaign(overrides, builder_overrides=None, seed=0):
    engine = create_engine("falkordb", gate_scale=_GATE_SCALE)
    tester = GQSTester(synthesizer_overrides=overrides)
    if builder_overrides:
        original_run_one = tester._run_one

        # Builder knobs are applied by wrapping synthesis at the campaign
        # level: patch the synthesizer the tester creates.
        import repro.core.runner as runner_module
        from repro.core.synthesizer import QuerySynthesizer

        class PatchedSynthesizer(QuerySynthesizer):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                for key, value in builder_overrides.items():
                    setattr(self.builder, key, value)

        original = runner_module.QuerySynthesizer
        runner_module.QuerySynthesizer = PatchedSynthesizer
        try:
            return tester.run(
                engine, budget_seconds=float("inf"), seed=seed,
                max_queries=_BUDGET_QUERIES,
            )
        finally:
            runner_module.QuerySynthesizer = original
    return tester.run(
        engine, budget_seconds=float("inf"), seed=seed,
        max_queries=_BUDGET_QUERIES,
    )


def _average_metric(overrides, builder_overrides, attribute, n=120):
    from repro.core.synthesizer import QuerySynthesizer, SynthesizerConfig

    total = 0
    for seed in range(n):
        schema, graph = GraphGenerator(seed=seed).generate_with_schema()
        config = SynthesizerConfig(**overrides)
        synthesizer = QuerySynthesizer(graph, rng=random.Random(seed), config=config)
        for key, value in (builder_overrides or {}).items():
            setattr(synthesizer.builder, key, value)
        result = synthesizer.synthesize()
        features = extract_features(result.query, print_query(result.query))
        total += getattr(features, attribute)
    return total / n


def test_ablation_stepwise_synthesis(benchmark):
    """Stepwise multi-clause synthesis vs. minimal MATCH-RETURN queries."""
    minimal = dict(
        extra_elements=0, extra_aliases=0, extra_lists=0,
        include_probability=1.0, union_probability=0.0,
        call_probability=0.0, where_with_probability=0.0,
        order_by_probability=0.0, limit_probability=0.0,
        distinct_probability=0.0, count_star_alias_probability=0.0,
    )

    def run_both():
        return _campaign({}, seed=1), _campaign(minimal, seed=1)

    full, ablated = run_once(benchmark, run_both)
    rows = [
        {"variant": "full GQS", "bugs": len(full.detected_faults),
         "failing tests": len(full.reports), "queries": full.queries_run},
        {"variant": "MATCH-RETURN only", "bugs": len(ablated.detected_faults),
         "failing tests": len(ablated.reports), "queries": ablated.queries_run},
    ]
    print()
    print(render_table(rows, "Ablation: stepwise synthesis"))
    assert len(full.detected_faults) > len(ablated.detected_faults)
    assert len(full.reports) > len(ablated.reports)


def test_ablation_adaptive_feedback(benchmark):
    """Coverage-guided adaptive synthesis vs. the blind baseline.

    Same tester, same engine, same seed and query budget; the only delta is
    the session policy (`repro.runtime.adapt.AdaptivePolicy`).  Both sides
    run the same number of queries, so the distinct-signatures ratio equals
    the per-1000-queries ratio the acceptance bar is stated in.
    """
    from repro.obs import distinct_signatures
    from repro.runtime import attach_adaptive_policy

    seed = 4  # pinned: blind is representative-unlucky, adaptation recovers

    def run_both():
        blind = _campaign({}, seed=seed)
        engine = create_engine("falkordb", gate_scale=_GATE_SCALE)
        tester = GQSTester()
        attach_adaptive_policy(tester, "epsilon")
        adaptive = tester.run(
            engine, budget_seconds=float("inf"), seed=seed,
            max_queries=_BUDGET_QUERIES,
        )
        return blind, adaptive

    blind, adaptive = run_once(benchmark, run_both)
    blind_sigs = len(distinct_signatures(blind.reports))
    adaptive_sigs = len(distinct_signatures(adaptive.reports))
    rows = [
        {"variant": "blind GQS", "distinct bugs": blind_sigs,
         "failing tests": len(blind.reports), "queries": blind.queries_run},
        {"variant": "adaptive GQS (epsilon)", "distinct bugs": adaptive_sigs,
         "failing tests": len(adaptive.reports),
         "queries": adaptive.queries_run},
    ]
    print()
    print(render_table(rows, "Ablation: adaptive feedback"))
    assert adaptive.queries_run == blind.queries_run
    assert adaptive_sigs >= 1.2 * blind_sigs


def test_ablation_pattern_mutation(benchmark):
    """Pattern mutation/splitting vs. single linear walks."""
    builder_off = dict(
        mutation_probability=0.0, split_probability=0.0, max_hops=1,
        undirected_probability=0.0,
    )

    def run_both():
        full = _average_metric({}, None, "patterns")
        ablated = _average_metric({}, builder_off, "patterns")
        full_bugs = _campaign({}, seed=2)
        ablated_bugs = _campaign({}, builder_off, seed=2)
        return full, ablated, full_bugs, ablated_bugs

    full_patterns, ablated_patterns, full_bugs, ablated_bugs = run_once(
        benchmark, run_both
    )
    rows = [
        {"variant": "full GQS", "avg patterns": round(full_patterns, 2),
         "bugs": len(full_bugs.detected_faults),
         "failing tests": len(full_bugs.reports)},
        {"variant": "no mutation", "avg patterns": round(ablated_patterns, 2),
         "bugs": len(ablated_bugs.detected_faults),
         "failing tests": len(ablated_bugs.reports)},
    ]
    print()
    print(render_table(rows, "Ablation: pattern mutation"))
    assert full_patterns > ablated_patterns
    # Distinct-bug counts saturate at compressed gates; the trigger *rate*
    # (failing tests over the same query budget) is the robust signal.
    assert len(full_bugs.reports) > len(ablated_bugs.reports)


def test_ablation_nested_expressions(benchmark):
    """Algorithm 2 nesting vs. plain property-access predicates."""
    shallow = dict(expression_depth=0)
    builder_shallow = dict(obfuscation_depth=0)

    def run_both():
        full = _average_metric({}, None, "depth")
        ablated = _average_metric(shallow, builder_shallow, "depth")
        full_bugs = _campaign({}, seed=3)
        ablated_bugs = _campaign(shallow, builder_shallow, seed=3)
        return full, ablated, full_bugs, ablated_bugs

    full_depth, ablated_depth, full_bugs, ablated_bugs = run_once(
        benchmark, run_both
    )
    rows = [
        {"variant": "full GQS", "avg nesting": round(full_depth, 2),
         "bugs": len(full_bugs.detected_faults),
         "failing tests": len(full_bugs.reports)},
        {"variant": "no nesting", "avg nesting": round(ablated_depth, 2),
         "bugs": len(ablated_bugs.detected_faults),
         "failing tests": len(ablated_bugs.reports)},
    ]
    print()
    print(render_table(rows, "Ablation: nested expressions"))
    assert full_depth > ablated_depth
    # See the pattern-mutation ablation: compare trigger rates, not
    # saturated distinct-bug counts.
    assert len(full_bugs.reports) > len(ablated_bugs.reports)
