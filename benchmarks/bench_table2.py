"""Table 2: summary of the tested GDBs (static engine metadata)."""

from conftest import run_once

from repro.experiments import render_table, table2


def test_table2(benchmark):
    rows = run_once(benchmark, table2)
    print()
    print(render_table(rows, "Table 2: Summary of the tested GDBs"))
    assert [row["GDB"] for row in rows] == ["Neo4j", "Memgraph", "Kùzu", "FalkorDB"]
