"""Shared fixtures for the benchmark/experiment harness.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation (§5).  Campaign-style experiments are executed once per benchmark
(``rounds=1``) because they are end-to-end reproductions rather than
micro-benchmarks; their wall-clock time is still recorded by
pytest-benchmark.  Every benchmark prints its table/figure so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction log.
"""

from __future__ import annotations

import os

import pytest


def bench_jobs() -> int:
    """Worker processes for campaign grids (``REPRO_BENCH_JOBS``, default 1).

    Campaign benchmarks fan their (tester × engine × seed) grids out through
    :class:`repro.runtime.ParallelCampaignRunner`; results are identical for
    any jobs value, so this only trades wall-clock for cores.
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def full_campaigns():
    """The compressed full GQS campaign, shared by Table 3/4 and Figures
    10-15 (the paper analyzes the same 36 bug-triggering queries in all of
    them)."""
    from repro.experiments import run_full_gqs_campaigns

    return run_full_gqs_campaigns(seed=0, jobs=bench_jobs())


@pytest.fixture(scope="session")
def day_campaigns():
    """The 24-hour-equivalent campaigns shared by Table 6 and Figure 18."""
    from repro.experiments import table6

    rows, campaigns = table6(seed=0, jobs=bench_jobs())
    return rows, campaigns
