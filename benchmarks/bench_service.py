"""Benchmarks for the campaign service scheduler.

Measures what the lease/heartbeat/journal machinery *costs* relative to
the work it schedules: a small grid dispatched through
:class:`CampaignScheduler` (process-per-lease, heartbeats, fsync'd
checkpoints) against the same grid run inline.  The ratio is recorded in
``extra_info`` so regressions in dispatch overhead show up in the
benchmark JSON, not just in wall-clock noise.

Also times the two hot non-dispatch paths: journal replay (crash
recovery folds the full event stream on every service start) and
admission (spec validation + grid decomposition, the synchronous cost of
every ``POST /jobs``).
"""

import json
import time

import pytest

from repro.core.reporting import load_event_stream
from repro.experiments.campaign import run_tool_campaign
from repro.service import CampaignScheduler, JobSpec
from repro.service.scheduler import replay_service_journal

ENGINE = "falkordb"
SPEC = {
    "testers": ["GQS", "GQT"],
    "engines": [ENGINE],
    "seeds": [0],
    "budget_seconds": 3.0,
}


def _run_grid_via_service(journal):
    scheduler = CampaignScheduler(
        journal, jobs=2, lease_seconds=60.0, heartbeat_seconds=0.5,
        poll_interval=0.01,
    )
    scheduler.submit(SPEC)
    scheduler.run_until(timeout=120)
    scheduler.drain()
    scheduler.tick()


def _run_grid_inline():
    for tester in SPEC["testers"]:
        run_tool_campaign(tester, ENGINE, seed=0, budget_seconds=3.0)


def test_service_dispatch_overhead(benchmark, tmp_path):
    """Service grid vs inline grid: the lease machinery's overhead."""
    inline_start = time.perf_counter()
    _run_grid_inline()
    inline_seconds = time.perf_counter() - inline_start

    counter = iter(range(1_000_000))
    durations = []

    def run():
        start = time.perf_counter()
        _run_grid_via_service(tmp_path / f"svc-{next(counter)}.jsonl")
        durations.append(time.perf_counter() - start)

    benchmark.pedantic(run, rounds=3, iterations=1)
    service_seconds = sum(durations) / len(durations)
    benchmark.extra_info["inline_seconds"] = inline_seconds
    benchmark.extra_info["overhead_ratio"] = (
        service_seconds / inline_seconds if inline_seconds else 0.0
    )


@pytest.fixture(scope="module")
def finished_journal(tmp_path_factory):
    journal = tmp_path_factory.mktemp("bench-svc") / "svc.jsonl"
    _run_grid_via_service(journal)
    return journal


def test_journal_replay_rate(benchmark, finished_journal):
    """Crash-recovery fold over a finished service journal."""
    events = list(load_event_stream(finished_journal))

    state = benchmark(replay_service_journal, events)
    benchmark.extra_info["events"] = len(events)
    benchmark.extra_info["journal_bytes"] = (
        finished_journal.stat().st_size
    )
    assert state["jobs"]


def test_admission_rate(benchmark):
    """Spec validation + grid decomposition: the cost of POST /jobs."""
    payload = json.loads(json.dumps(SPEC))

    def admit():
        return JobSpec.from_dict(payload).cells()

    cells = benchmark(admit)
    assert len(cells) == 2
