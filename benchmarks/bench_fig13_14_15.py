"""Figures 13-15: bug distributions over dependencies, patterns, nesting.

Shape targets (paper §5.3): over 61% of bugs come from queries with more
than 20 cross-clause dependencies; two thirds involve more than three
patterns; 83% involve expressions nested more than five levels deep.
"""

from conftest import run_once

from repro.experiments import (
    collect_trigger_records,
    figure13,
    figure14,
    figure15,
    render_histogram,
)


def test_figure13_dependencies(benchmark, full_campaigns):
    records = collect_trigger_records(full_campaigns)
    histogram = run_once(benchmark, figure13, records)
    print()
    print(render_histogram(histogram, "Figure 13: bugs by #dependencies"))
    total = len(records)
    heavy = sum(1 for r in records if r["dependencies"] > 20)
    assert heavy / total >= 0.5  # paper: > 61%


def test_figure14_patterns(benchmark, full_campaigns):
    records = collect_trigger_records(full_campaigns)
    histogram = run_once(benchmark, figure14, records)
    print()
    print(render_histogram(histogram, "Figure 14: bugs by #patterns"))
    total = len(records)
    multi = sum(1 for r in records if r["patterns"] > 3)
    assert multi / total >= 0.5  # paper: two thirds


def test_figure15_nesting(benchmark, full_campaigns):
    records = collect_trigger_records(full_campaigns)
    histogram = run_once(benchmark, figure15, records)
    print()
    print(render_histogram(histogram, "Figure 15: bugs by nesting depth"))
    total = len(records)
    deep = sum(1 for r in records if r["depth"] > 5)
    assert deep / total >= 0.7  # paper: 83%
