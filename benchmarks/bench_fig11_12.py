"""Figures 11 and 12: clause statistics over the bug-triggering queries.

Shape targets (paper §5.3): MATCH is the most frequent main clause; WHERE
occurs even more often (it refines both MATCH and WITH); a large majority of
bugs involve WITH or ORDER BY (24 of 36 in the paper).
"""

from conftest import run_once

from repro.experiments import (
    collect_trigger_records,
    figure11,
    figure12,
    render_histogram,
)


def test_figure11_clause_occurrences(benchmark, full_campaigns):
    records = collect_trigger_records(full_campaigns)
    histogram = run_once(benchmark, figure11, records)
    print()
    print(render_histogram(
        histogram, "Figure 11: aggregated clause occurrences in bug-triggering queries"
    ))
    main_clauses = {
        k: v for k, v in histogram.items()
        if k in ("MATCH", "OPTIONAL MATCH", "UNWIND", "WITH", "RETURN", "CALL")
    }
    assert histogram.get("WHERE", 0) >= max(main_clauses.values())
    assert histogram.get("MATCH", 0) > 0
    assert histogram.get("WITH", 0) > 0


def test_figure12_bugs_per_clause(benchmark, full_campaigns):
    records = collect_trigger_records(full_campaigns)
    histogram = run_once(benchmark, figure12, records)
    print()
    print(render_histogram(
        histogram, "Figure 12: number of bugs involving each clause type"
    ))
    total = len(records)
    # The canonical MATCH-WHERE-RETURN skeleton touches almost every bug.
    for clause in ("MATCH", "WHERE", "RETURN"):
        assert histogram.get(clause, 0) >= total * 0.8
    # Paper: 24/36 involve ORDER BY or WITH.
    with_or_order = sum(
        1
        for record in records
        if "WITH" in record["clause_names"] or "ORDER BY" in record["clause_names"]
    )
    assert with_or_order / total >= 0.5
