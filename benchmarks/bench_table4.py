"""Table 4: bugs missed by the existing testers, and their latencies.

GQS's bug-triggering queries are replayed through each baseline's oracle;
a bug counts as missed when the oracle raises no alarm.  The underlying
campaigns run through the shared ``repro.runtime`` kernel (set
``REPRO_BENCH_JOBS`` to parallelize them).  Shape targets
(paper): every baseline misses a majority of the bugs, the FalkorDB
(RedisGraph) column dominates, and missed-bug latencies run 2-4 years on
average with a 5-year maximum.
"""

from conftest import run_once

from repro.experiments import render_table, table4


def test_table4(benchmark, full_campaigns):
    data = run_once(benchmark, table4, full_campaigns)
    print()
    print(render_table(data["missed"], "Table 4: Bugs missed by existing testers"))
    latency_rows = [
        {"GDB": engine, "avg latency (yrs)": round(values["avg"], 1),
         "max latency (yrs)": round(values["max"], 1)}
        for engine, values in data["latency"].items()
    ]
    print(render_table(latency_rows, "Missed-bug latency"))

    # Every tool misses a substantial number of GQS's bugs.
    for row in data["missed"]:
        assert row["Total"] >= 5, row
        # The RedisGraph/FalkorDB column carries the most misses.
        supported = {
            engine: row[engine]
            for engine in ("neo4j", "memgraph", "falkordb")
            if isinstance(row[engine], int)
        }
        if "falkordb" in supported:
            assert supported["falkordb"] == max(supported.values())
    # Latency shape: FalkorDB's missed bugs are the longest-latent.
    assert data["latency"]["falkordb"]["max"] >= data["latency"]["neo4j"]["max"]
