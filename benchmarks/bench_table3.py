"""Table 3: bugs detected by GQS across the four engines.

The paper's campaign ran for months; here the fault gates are scaled down
(``FULL_CAMPAIGN_GATE_SCALE``) so the same discovery process completes in a
benchmark-sized run.  The per-engine campaigns run through the shared
``repro.runtime`` kernel (set ``REPRO_BENCH_JOBS`` to fan them out over a
process pool).  Shape targets: a 36-bug scope split 26 logic / 10 other,
with FalkorDB carrying the largest share.
"""

from conftest import run_once

from repro.experiments import render_table, table3


def test_table3(benchmark, full_campaigns):
    rows = run_once(benchmark, table3, full_campaigns)
    print()
    print(render_table(rows, "Table 3: Bugs detected by GQS (compressed campaign)"))

    total = rows[-1]
    logic = total["logic detected"]
    other = total["other detected"]
    # Shape assertions, not exact-count assertions: most of the 36-fault
    # scope is discovered, logic bugs dominate, FalkorDB leads.
    assert logic + other >= 28
    assert logic > other
    falkor = next(row for row in rows if row["GDB"] == "FalkorDB")
    others = [row for row in rows if row["GDB"] not in ("FalkorDB", "Total")]
    assert falkor["logic detected"] >= max(r["logic detected"] for r in others)
