"""Micro-benchmarks for the core components.

These are conventional pytest-benchmark measurements (multiple rounds) of
the substrate pieces every experiment leans on: query synthesis, reference
execution, pattern matching, and parsing — plus campaign-grid pairs that
quantify the observability overhead (the ``repro.obs`` contract is <5%
with metrics enabled; the coverage/triage and operator-profiler pairs
record their measured overhead ratios in the benchmark JSON via
``extra_info``).
"""

import random
import statistics
import time

import pytest
from conftest import run_once

from repro.core import QuerySynthesizer
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine import Executor
from repro.experiments.campaign import TESTER_NAMES, run_campaign_grid
from repro.graph import GraphGenerator


@pytest.fixture(scope="module")
def workload():
    schema, graph = GraphGenerator(seed=0).generate_with_schema()
    synthesizer = QuerySynthesizer(graph, rng=random.Random(0))
    results = [synthesizer.synthesize() for _ in range(10)]
    return graph, results


def test_synthesis_throughput(benchmark):
    schema, graph = GraphGenerator(seed=1).generate_with_schema()
    rng = random.Random(1)
    synthesizer = QuerySynthesizer(graph, rng=rng)
    benchmark(synthesizer.synthesize)


def test_execution_throughput(benchmark, workload):
    graph, results = workload
    executor = Executor(graph.copy())
    queries = [result.query for result in results]

    def run_all():
        for query in queries:
            executor.execute(query)

    benchmark(run_all)


def test_parse_throughput(benchmark, workload):
    _graph, results = workload
    texts = [print_query(result.query) for result in results]

    def parse_all():
        for text in texts:
            parse_query(text)

    benchmark(parse_all)


def test_print_throughput(benchmark, workload):
    _graph, results = workload
    queries = [result.query for result in results]

    def print_all():
        for query in queries:
            print_query(query)

    benchmark(print_all)


def test_graph_generation_throughput(benchmark):
    counter = iter(range(10**9))

    def generate():
        GraphGenerator(seed=next(counter)).generate()

    benchmark(generate)


# -- compiled execution core (repro.engine.plan) -----------------------------
#
# Pair: the identical standard campaign workload through the reference
# interpreter and through the compiled operator pipelines.  The workload
# mixes synthesized campaign queries (seed 3) with the paper's pinned-node
# idiom (``n.id = …`` predicates, §3.4) whose property-index scans are the
# planner's strongest case.  Engines are warmed first so the measurement
# covers steady-state campaign behaviour (plan cache and parse memo hot);
# both modes record queries/sec — and the compiled one its
# ``plan_cache_hit_ratio`` — in the bench JSON ``extra_info``.

MODE_ENGINE = "falkordb"


@pytest.fixture(scope="module")
def mode_workload():
    from repro.core.runner import synthesizer_config_for
    from repro.gdb import create_engine

    schema, graph = GraphGenerator(seed=3).generate_with_schema()
    synthesizer = QuerySynthesizer(
        graph, rng=random.Random(3),
        config=synthesizer_config_for(create_engine(MODE_ENGINE)),
    )
    texts = [print_query(synthesizer.synthesize().query) for _ in range(60)]
    node_ids = graph.node_ids()
    for index in range(30):
        k = node_ids[index % len(node_ids)]
        if index % 2:
            texts.append(
                f"MATCH (a {{id: {k}}})-[r]->(b) "
                f"RETURN a.id, b.id ORDER BY b.id"
            )
        else:
            texts.append(
                f"MATCH (a)-[r]->(b) WHERE a.id = {k} AND b.id <> {k} "
                f"RETURN r.id"
            )
    return schema, graph, texts


def _mode_engine(mode, mode_workload):
    from repro.gdb import create_engine

    schema, graph, texts = mode_workload
    engine = create_engine(MODE_ENGINE, faults_enabled=False,
                           execution_mode=mode)
    engine.load_graph(graph, schema)
    for text in texts:  # warm: parse memo, plan cache, graph indexes
        engine.execute(text)
    return engine, texts


def _bench_mode(benchmark, mode, mode_workload):
    engine, texts = _mode_engine(mode, mode_workload)

    def run_all():
        for text in texts:
            engine.execute(text)

    benchmark(run_all)
    benchmark.extra_info["queries_per_sec"] = round(
        len(texts) / benchmark.stats.stats.mean, 1)
    return engine


def test_execution_mode_interpreted(benchmark, mode_workload):
    benchmark.extra_info["pair"] = "execution-mode/interpreted"
    _bench_mode(benchmark, "interpreted", mode_workload)


def test_execution_mode_compiled(benchmark, mode_workload):
    benchmark.extra_info["pair"] = "execution-mode/compiled"
    engine = _bench_mode(benchmark, "compiled", mode_workload)
    cache = engine._plan_cache
    lookups = cache.hits + cache.misses
    benchmark.extra_info["plan_cache_hit_ratio"] = round(
        cache.hits / lookups, 4) if lookups else None


def test_execution_mode_speedup(benchmark, mode_workload):
    """Paired measurement of the acceptance bar: compiled ≥ 2× interpreted.

    The two standalone benchmarks above record each mode's absolute
    timings, but their rounds run minutes apart, so host drift lands
    asymmetrically and the implied ratio swings wildly.  This test
    controls both noise sources directly:

    * **Per-query best-of-N, interleaved.**  Preemption only ever
      *inflates* a sample, so the minimum of N alternating runs per query
      estimates each leg's true cost; summing the minima gives a ratio
      that is stable to a few percent on a noisy shared host.
    * **A fresh thread.**  The compiled core recurses per pattern step,
      and CPython 3.11's chunked frame stack makes recursion that
      straddles a chunk boundary pay an allocation per crossing — whether
      it straddles one depends on the *caller's* stack depth, and pytest
      adds dozens of frames.  A dedicated thread starts from a fresh
      stack, so the measurement reflects the engines rather than the
      harness's incidental call depth.

    Same protocol as the coverage pair's ``overhead_ratio``: both legs'
    queries/sec and the ratio land in the bench JSON, and the bar is
    asserted so a regression fails loudly.
    """
    import threading

    benchmark.extra_info["pair"] = "execution-mode/speedup"
    interp, texts = _mode_engine("interpreted", mode_workload)
    compiled, _texts = _mode_engine("compiled", mode_workload)

    def paired_best_of_n(rounds=7):
        total_interp = total_compiled = 0.0
        for text in texts:
            best_interp = best_compiled = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                interp.execute(text)
                lap = time.perf_counter() - start
                if lap < best_interp:
                    best_interp = lap
                start = time.perf_counter()
                compiled.execute(text)
                lap = time.perf_counter() - start
                if lap < best_compiled:
                    best_compiled = lap
            total_interp += best_interp
            total_compiled += best_compiled
        return total_interp, total_compiled

    def in_fresh_thread():
        box = {}

        def measure():
            box["totals"] = paired_best_of_n()

        worker = threading.Thread(target=measure)
        worker.start()
        worker.join()
        return box["totals"]

    total_interp, total_compiled = run_once(benchmark, in_fresh_thread)
    benchmark.extra_info["interpreted_queries_per_sec"] = round(
        len(texts) / total_interp, 1)
    benchmark.extra_info["compiled_queries_per_sec"] = round(
        len(texts) / total_compiled, 1)
    speedup = round(total_interp / total_compiled, 2)
    benchmark.extra_info["compiled_speedup"] = speedup
    assert speedup >= 2.0


# -- observability overhead (6 testers × 2 engines) -------------------------
#
# The two benchmarks below run the identical grid with metrics off and on;
# comparing their times measures the full instrumentation cost (probe
# branches, span bookkeeping, per-query counter flushes).  Results are
# asserted identical so the comparison is apples-to-apples.

GRID_ENGINES = ("neo4j", "falkordb")  # the two engines all 6 testers support


def _metrics_grid(record_metrics):
    return run_campaign_grid(
        TESTER_NAMES, GRID_ENGINES, seeds=(0,), budget_seconds=4.0,
        gate_scale=0.05, jobs=1, record_metrics=record_metrics,
    )


def test_campaign_grid_metrics_off(benchmark):
    grid = run_once(benchmark, _metrics_grid, False)
    assert len(grid) == 12


def test_campaign_grid_metrics_on(benchmark):
    grid = run_once(benchmark, _metrics_grid, True)
    plain = _metrics_grid(False)
    assert {key: result.detected_faults for key, result in grid.items()} == \
        {key: result.detected_faults for key, result in plain.items()}


# The evaluation tier (coverage + triage) walks every proposed query's AST,
# so its cost scales with query volume rather than span count.  Same
# apples-to-apples protocol: identical grid, probe fully off in both runs,
# the second run additionally accumulating coverage sets and bug signatures.


def _coverage_grid(record_coverage):
    return run_campaign_grid(
        TESTER_NAMES, GRID_ENGINES, seeds=(0,), budget_seconds=4.0,
        gate_scale=0.05, jobs=1,
        record_coverage=record_coverage, record_triage=record_coverage,
    )


def test_campaign_grid_coverage_off(benchmark):
    benchmark.extra_info["pair"] = "coverage-overhead/baseline"
    grid = run_once(benchmark, _coverage_grid, False)
    assert len(grid) == 12


def test_campaign_grid_coverage_on(benchmark):
    benchmark.extra_info["pair"] = "coverage-overhead/instrumented"
    grid = run_once(benchmark, _coverage_grid, True)
    baseline_start = time.perf_counter()
    plain = _coverage_grid(False)
    baseline_seconds = time.perf_counter() - baseline_start
    assert {key: result.detected_faults for key, result in grid.items()} == \
        {key: result.detected_faults for key, result in plain.items()}
    # Lands in --benchmark-json so the overhead is recorded, not just derivable.
    instrumented_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 4)
    benchmark.extra_info["overhead_ratio"] = round(
        instrumented_seconds / baseline_seconds, 4)


# The per-operator profiler (repro.obs.profile) hooks the compiled
# operator pipeline itself, so its cost is measured on the raw engine
# rather than through the campaign kernel: the identical compiled-mode
# workload with the probe off (profiler dormant — one attribute check per
# query) and inside an observed() scope (wall time + step deltas per
# operator, flushed to the registry per query).  Results are asserted
# identical — the profiler's RNG-stream invariance — and the measured
# ratio lands in the bench JSON like the coverage pair's.


def _profiler_run(engine, texts):
    return [engine.execute(text).rows for text in texts]


def test_operator_profiler_off(benchmark, mode_workload):
    benchmark.extra_info["pair"] = "profiler-overhead/baseline"
    engine, texts = _mode_engine("compiled", mode_workload)
    benchmark(_profiler_run, engine, texts)


def test_operator_profiler_on(benchmark, mode_workload):
    from repro.obs import observed

    benchmark.extra_info["pair"] = "profiler-overhead/instrumented"
    engine, texts = _mode_engine("compiled", mode_workload)

    def run_observed():
        with observed():
            return _profiler_run(engine, texts)

    profiled = benchmark(run_observed)
    baseline_start = time.perf_counter()
    plain = _profiler_run(engine, texts)
    baseline_seconds = time.perf_counter() - baseline_start
    assert profiled == plain  # profiling never changes results
    instrumented_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 4)
    benchmark.extra_info["overhead_ratio"] = round(
        instrumented_seconds / baseline_seconds, 4)


# -- test-case reduction (repro.reduce) -------------------------------------
#
# Pair: replaying a bundle set once (the oracle's unit of work) vs. fully
# delta-debugging it.  The reduction benchmark records its throughput in
# oracle replays/second and the mean graph shrink ratio achieved, so the
# bench JSON tracks both speed and minimization quality over time.

REDUCE_BUDGET = 120  # replays per bundle: full graph passes + query start


@pytest.fixture(scope="module")
def reduction_corpus(tmp_path_factory):
    from repro.experiments.campaign import run_tool_campaign

    directory = tmp_path_factory.mktemp("bundles")
    run_tool_campaign(
        "GQS", "falkordb", budget_seconds=6.0, seed=0, gate_scale=0.05,
        record_triage=True, bundle_dir=directory,
    )
    return directory


def test_bundle_replay_throughput(benchmark, reduction_corpus):
    from repro.obs import load_bundle, replay_bundle
    from repro.reduce import iter_bundle_paths

    benchmark.extra_info["pair"] = "reduction/replay-baseline"
    bundles = [load_bundle(p) for p in iter_bundle_paths([reduction_corpus])]

    def replay_all():
        for bundle in bundles:
            assert replay_bundle(bundle).reproduced

    benchmark(replay_all)


def test_bundle_reduction(benchmark, reduction_corpus):
    from repro.reduce import ReductionRunner

    benchmark.extra_info["pair"] = "reduction/minimize"
    outcomes = run_once(
        benchmark,
        lambda: ReductionRunner(replay_budget=REDUCE_BUDGET).run(
            [reduction_corpus]
        ),
    )
    reduced = [o for o in outcomes if o.reproduced]
    assert reduced
    seconds = benchmark.stats.stats.mean
    replays = sum(o.oracle_replays for o in reduced)
    shrinks = [o.graph_shrink_ratio for o in reduced]
    benchmark.extra_info["bundles"] = len(reduced)
    benchmark.extra_info["oracle_replays_per_sec"] = round(
        replays / seconds, 2)
    benchmark.extra_info["mean_shrink_ratio"] = round(
        sum(shrinks) / len(shrinks), 4)
