"""Micro-benchmarks for the core components.

These are conventional pytest-benchmark measurements (multiple rounds) of
the substrate pieces every experiment leans on: query synthesis, reference
execution, pattern matching, and parsing.
"""

import random

import pytest

from repro.core import QuerySynthesizer
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine import Executor
from repro.graph import GraphGenerator


@pytest.fixture(scope="module")
def workload():
    schema, graph = GraphGenerator(seed=0).generate_with_schema()
    synthesizer = QuerySynthesizer(graph, rng=random.Random(0))
    results = [synthesizer.synthesize() for _ in range(10)]
    return graph, results


def test_synthesis_throughput(benchmark):
    schema, graph = GraphGenerator(seed=1).generate_with_schema()
    rng = random.Random(1)
    synthesizer = QuerySynthesizer(graph, rng=rng)
    benchmark(synthesizer.synthesize)


def test_execution_throughput(benchmark, workload):
    graph, results = workload
    executor = Executor(graph.copy())
    queries = [result.query for result in results]

    def run_all():
        for query in queries:
            executor.execute(query)

    benchmark(run_all)


def test_parse_throughput(benchmark, workload):
    _graph, results = workload
    texts = [print_query(result.query) for result in results]

    def parse_all():
        for text in texts:
            parse_query(text)

    benchmark(parse_all)


def test_print_throughput(benchmark, workload):
    _graph, results = workload
    queries = [result.query for result in results]

    def print_all():
        for query in queries:
            print_query(query)

    benchmark(print_all)


def test_graph_generation_throughput(benchmark):
    counter = iter(range(10**9))

    def generate():
        GraphGenerator(seed=next(counter)).generate()

    benchmark(generate)
