"""Micro-benchmarks for the core components.

These are conventional pytest-benchmark measurements (multiple rounds) of
the substrate pieces every experiment leans on: query synthesis, reference
execution, pattern matching, and parsing — plus campaign-grid pairs that
quantify the observability overhead (the ``repro.obs`` contract is <5%
with metrics enabled; the coverage/triage pair records its measured
overhead ratio in the benchmark JSON via ``extra_info``).
"""

import random
import time

import pytest
from conftest import run_once

from repro.core import QuerySynthesizer
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine import Executor
from repro.experiments.campaign import TESTER_NAMES, run_campaign_grid
from repro.graph import GraphGenerator


@pytest.fixture(scope="module")
def workload():
    schema, graph = GraphGenerator(seed=0).generate_with_schema()
    synthesizer = QuerySynthesizer(graph, rng=random.Random(0))
    results = [synthesizer.synthesize() for _ in range(10)]
    return graph, results


def test_synthesis_throughput(benchmark):
    schema, graph = GraphGenerator(seed=1).generate_with_schema()
    rng = random.Random(1)
    synthesizer = QuerySynthesizer(graph, rng=rng)
    benchmark(synthesizer.synthesize)


def test_execution_throughput(benchmark, workload):
    graph, results = workload
    executor = Executor(graph.copy())
    queries = [result.query for result in results]

    def run_all():
        for query in queries:
            executor.execute(query)

    benchmark(run_all)


def test_parse_throughput(benchmark, workload):
    _graph, results = workload
    texts = [print_query(result.query) for result in results]

    def parse_all():
        for text in texts:
            parse_query(text)

    benchmark(parse_all)


def test_print_throughput(benchmark, workload):
    _graph, results = workload
    queries = [result.query for result in results]

    def print_all():
        for query in queries:
            print_query(query)

    benchmark(print_all)


def test_graph_generation_throughput(benchmark):
    counter = iter(range(10**9))

    def generate():
        GraphGenerator(seed=next(counter)).generate()

    benchmark(generate)


# -- observability overhead (6 testers × 2 engines) -------------------------
#
# The two benchmarks below run the identical grid with metrics off and on;
# comparing their times measures the full instrumentation cost (probe
# branches, span bookkeeping, per-query counter flushes).  Results are
# asserted identical so the comparison is apples-to-apples.

GRID_ENGINES = ("neo4j", "falkordb")  # the two engines all 6 testers support


def _metrics_grid(record_metrics):
    return run_campaign_grid(
        TESTER_NAMES, GRID_ENGINES, seeds=(0,), budget_seconds=4.0,
        gate_scale=0.05, jobs=1, record_metrics=record_metrics,
    )


def test_campaign_grid_metrics_off(benchmark):
    grid = run_once(benchmark, _metrics_grid, False)
    assert len(grid) == 12


def test_campaign_grid_metrics_on(benchmark):
    grid = run_once(benchmark, _metrics_grid, True)
    plain = _metrics_grid(False)
    assert {key: result.detected_faults for key, result in grid.items()} == \
        {key: result.detected_faults for key, result in plain.items()}


# The evaluation tier (coverage + triage) walks every proposed query's AST,
# so its cost scales with query volume rather than span count.  Same
# apples-to-apples protocol: identical grid, probe fully off in both runs,
# the second run additionally accumulating coverage sets and bug signatures.


def _coverage_grid(record_coverage):
    return run_campaign_grid(
        TESTER_NAMES, GRID_ENGINES, seeds=(0,), budget_seconds=4.0,
        gate_scale=0.05, jobs=1,
        record_coverage=record_coverage, record_triage=record_coverage,
    )


def test_campaign_grid_coverage_off(benchmark):
    benchmark.extra_info["pair"] = "coverage-overhead/baseline"
    grid = run_once(benchmark, _coverage_grid, False)
    assert len(grid) == 12


def test_campaign_grid_coverage_on(benchmark):
    benchmark.extra_info["pair"] = "coverage-overhead/instrumented"
    grid = run_once(benchmark, _coverage_grid, True)
    baseline_start = time.perf_counter()
    plain = _coverage_grid(False)
    baseline_seconds = time.perf_counter() - baseline_start
    assert {key: result.detected_faults for key, result in grid.items()} == \
        {key: result.detected_faults for key, result in plain.items()}
    # Lands in --benchmark-json so the overhead is recorded, not just derivable.
    instrumented_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 4)
    benchmark.extra_info["overhead_ratio"] = round(
        instrumented_seconds / baseline_seconds, 4)


# -- test-case reduction (repro.reduce) -------------------------------------
#
# Pair: replaying a bundle set once (the oracle's unit of work) vs. fully
# delta-debugging it.  The reduction benchmark records its throughput in
# oracle replays/second and the mean graph shrink ratio achieved, so the
# bench JSON tracks both speed and minimization quality over time.

REDUCE_BUDGET = 120  # replays per bundle: full graph passes + query start


@pytest.fixture(scope="module")
def reduction_corpus(tmp_path_factory):
    from repro.experiments.campaign import run_tool_campaign

    directory = tmp_path_factory.mktemp("bundles")
    run_tool_campaign(
        "GQS", "falkordb", budget_seconds=6.0, seed=0, gate_scale=0.05,
        record_triage=True, bundle_dir=directory,
    )
    return directory


def test_bundle_replay_throughput(benchmark, reduction_corpus):
    from repro.obs import load_bundle, replay_bundle
    from repro.reduce import iter_bundle_paths

    benchmark.extra_info["pair"] = "reduction/replay-baseline"
    bundles = [load_bundle(p) for p in iter_bundle_paths([reduction_corpus])]

    def replay_all():
        for bundle in bundles:
            assert replay_bundle(bundle).reproduced

    benchmark(replay_all)


def test_bundle_reduction(benchmark, reduction_corpus):
    from repro.reduce import ReductionRunner

    benchmark.extra_info["pair"] = "reduction/minimize"
    outcomes = run_once(
        benchmark,
        lambda: ReductionRunner(replay_budget=REDUCE_BUDGET).run(
            [reduction_corpus]
        ),
    )
    reduced = [o for o in outcomes if o.reproduced]
    assert reduced
    seconds = benchmark.stats.stats.mean
    replays = sum(o.oracle_replays for o in reduced)
    shrinks = [o.graph_shrink_ratio for o in reduced]
    benchmark.extra_info["bundles"] = len(reduced)
    benchmark.extra_info["oracle_replays_per_sec"] = round(
        replays / seconds, 2)
    benchmark.extra_info["mean_shrink_ratio"] = round(
        sum(shrinks) / len(shrinks), 4)
