"""Figure 18: cumulative bugs over the 24-hour-equivalent campaign.

Reuses Table 6's kernel-run campaign grid (``day_campaigns`` fixture; set
``REPRO_BENCH_JOBS`` to parallelize it).

Shape targets (paper §5.4.4): GQS's curve dominates on both Neo4j and
FalkorDB and keeps rising through the budget; the session-crash finds of
GDBMeter/Gamera appear late in the FalkorDB run (the paper saw them after
21 and 17 hours).
"""

from conftest import run_once

from repro.experiments import figure18, render_series


def test_figure18(benchmark, day_campaigns):
    _rows, campaigns = day_campaigns
    series = run_once(benchmark, figure18, campaigns)
    print()
    for engine, tool_series in series.items():
        print(render_series(tool_series, f"Figure 18 — {engine} (cumulative bugs)"))
        print()

    for engine, tool_series in series.items():
        gqs_final = tool_series["GQS"][-1][1]
        for tool, points in tool_series.items():
            if tool == "GQS":
                continue
            assert gqs_final >= points[-1][1], (engine, tool)
        # Cumulative series are monotone.
        for tool, points in tool_series.items():
            counts = [count for _t, count in points]
            assert counts == sorted(counts)

    # The long-session crash finds land in the second half of the budget.
    falkor = series.get("FalkorDB", {})
    for tool in ("GDBMeter", "Gamera"):
        points = falkor.get(tool, [])
        if points and points[-1][1] > 0:
            halfway = points[len(points) // 2][1]
            assert halfway < points[-1][1] or halfway == 0
