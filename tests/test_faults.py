"""Tests for query feature extraction and the fault model."""

import pytest

from repro.cypher.parser import parse_query
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherRuntimeError, DatabaseCrash, ResourceExhausted
from repro.gdb.catalog import all_faults, faults_for, gqs_scope_faults
from repro.gdb.faults import FaultEffect, extract_features


def features_of(text):
    query = parse_query(text)
    return extract_features(query, text)


class TestFeatureExtraction:
    def test_clause_counters(self):
        f = features_of(
            "MATCH (a)-[r]->(b) OPTIONAL MATCH (c) UNWIND [1] AS x "
            "WITH a, x RETURN x"
        )
        assert f.match_count == 1
        assert f.optional_match_count == 1
        assert f.unwind_count == 1
        assert f.with_count == 1

    def test_unwind_positions(self):
        before = features_of("UNWIND [1] AS x MATCH (n) RETURN x")
        assert before.starts_with_unwind
        assert before.unwind_before_match
        between = features_of(
            "MATCH (a) UNWIND [1] AS x MATCH (b) RETURN x"
        )
        assert between.unwind_between_matches
        assert not between.starts_with_unwind

    def test_pattern_features(self):
        f = features_of("MATCH (a:L1:L2)-[r]-(b), (c:L3) RETURN a")
        assert f.undirected_rels == 1
        assert f.multi_label_nodes == 1
        assert f.patterns == 2

    def test_predicate_operators(self):
        f = features_of(
            "MATCH (n) WHERE n.a STARTS WITH 'x' AND n.b % 2 = 0 AND "
            "(n.c XOR true) AND n.d / 3 > 1 RETURN n"
        )
        assert f.string_predicates == 1
        assert f.modulo_ops == 1
        assert f.xor_ops == 1
        assert f.division_ops == 1

    def test_rel_inequality(self):
        f = features_of("MATCH (a)-[r1]->(b)-[r2]->(c) WHERE r1 <> r2 RETURN a")
        assert f.rel_inequality_predicates == 1

    def test_replace_with_empty_detected(self):
        f = features_of("WITH replace('x', '', 'y') AS a RETURN a")
        assert f.replace_with_empty
        f2 = features_of("WITH replace('x', 'q', 'y') AS a RETURN a")
        assert not f2.replace_with_empty

    def test_aggregates_counted_including_count_star(self):
        f = features_of("MATCH (n) RETURN count(*) AS c, collect(n.x) AS xs")
        assert f.aggregate_count == 2

    def test_union_and_call(self):
        f = features_of(
            "CALL db.labels() YIELD label RETURN label UNION RETURN 'x' AS label"
        )
        assert f.has_union
        assert f.has_call

    def test_order_flags(self):
        f = features_of("MATCH (n) RETURN n.x ORDER BY n.x DESC LIMIT 2")
        assert f.has_order_by and f.has_desc_order and f.has_limit

    def test_signature_hash_stable(self):
        f1 = features_of("MATCH (n) WHERE n.x = 1 RETURN n.y AS out")
        f2 = features_of("MATCH (m) WHERE m.x = 1 RETURN m.y AS out")
        # Same structure, different variable names: same signature.
        assert f1.signature_hash() == f2.signature_hash()

    def test_signature_hash_sensitive_to_structure(self):
        f1 = features_of("MATCH (n) RETURN n")
        f2 = features_of("MATCH (n) MATCH (m) RETURN n")
        f3 = features_of("MATCH (n) WHERE n.x = 1 RETURN n")
        assert f1.signature_hash() != f2.signature_hash()
        assert f1.signature_hash() != f3.signature_hash()


class TestCatalog:
    def test_scope_is_36_faults(self):
        """The paper's Table 3 total: 36 bugs."""
        assert len(gqs_scope_faults()) == 36

    def test_per_engine_breakdown(self):
        """Neo4j 2+3, Memgraph 6+1, Kùzu 5+2, FalkorDB 13+4 (Table 3)."""
        expected = {
            "neo4j": (2, 3),
            "memgraph": (6, 1),
            "kuzu": (5, 2),
            "falkordb": (13, 4),
        }
        for engine, (logic, other) in expected.items():
            # Table-3 scope: session-only and state-corruption faults are
            # outside the paper's read-only catalog (gqs_scope_faults).
            scope = [
                f for f in faults_for(engine)
                if not f.session_queries_required and not f.is_state
            ]
            assert sum(1 for f in scope if f.is_logic) == logic
            assert sum(1 for f in scope if not f.is_logic) == other

    def test_session_only_faults(self):
        session = [f for f in all_faults() if f.session_queries_required]
        assert len(session) == 2
        assert all(f.gdb == "falkordb" for f in session)

    def test_fault_ids_unique(self):
        ids = [f.fault_id for f in all_faults()]
        assert len(ids) == len(set(ids))

    def test_latency_shape(self):
        """Table 4: FalkorDB latencies up to 5 years; Neo4j max 2.7."""
        falkor_years = [f.introduced_year for f in faults_for("falkordb")]
        neo_years = [f.introduced_year for f in faults_for("neo4j")]
        assert max(falkor_years) == 5.0
        assert max(neo_years) == 2.7

    def test_triggers_are_deterministic(self):
        f = features_of("MATCH (n) WHERE n.x = 1 RETURN n.y AS out")
        for fault in all_faults():
            assert fault.triggers(f) == fault.triggers(f)

    def test_gate_scaling_monotone(self):
        """Scaling gates down can only add trigger opportunities."""
        texts = [
            "MATCH (a)-[r1]-(b), (c)-[r2]->(d) WHERE a.id = 1 AND b.id % 7 = 0 "
            "UNWIND [1,2] AS x WITH a, x, b RETURN a.id AS v ORDER BY v DESC",
            "MATCH (n:L1:L2) WHERE n.k STARTS WITH 'ab' RETURN n.k AS k",
        ]
        for text in texts:
            f = features_of(text)
            for fault in all_faults():
                if fault.triggers(f, session_queries=10**6):
                    assert fault.triggers(
                        f, session_queries=10**6, gate_scale=0.0001
                    )

    def test_session_faults_need_long_sessions(self):
        session_fault = next(f for f in all_faults() if f.session_queries_required)
        f = features_of("MATCH (n) WHERE n.x = 1 RETURN n")
        assert not session_fault.triggers(f, session_queries=10)
        assert session_fault.triggers(
            f, session_queries=session_fault.session_queries_required + 1
        )


class TestEffects:
    def _result(self):
        return ResultSet(["a", "b"], [(1, "x"), (2, "y")])

    def test_empty_result(self):
        out = FaultEffect.empty_result(self._result(), 0)
        assert len(out) == 0
        assert out.columns == ["a", "b"]

    def test_keep_first_row(self):
        out = FaultEffect.keep_first_row(self._result(), 0)
        assert out.rows == [(1, "x")]

    def test_drop_last_row(self):
        out = FaultEffect.drop_last_row(self._result(), 0)
        assert out.rows == [(1, "x")]

    def test_duplicate_rows(self):
        out = FaultEffect.duplicate_rows(self._result(), 0)
        assert len(out) == 3

    def test_extra_null_row(self):
        out = FaultEffect.extra_null_row(self._result(), 0)
        assert out.rows[-1] == (None, None)

    def test_wrong_value_changes_exactly_one_cell(self):
        base = self._result()
        out = FaultEffect.wrong_value(base, 3)
        diffs = [
            (i, j)
            for i in range(2)
            for j in range(2)
            if out.rows[i][j] != base.rows[i][j]
        ]
        assert len(diffs) == 1

    def test_wrong_value_deterministic(self):
        a = FaultEffect.wrong_value(self._result(), 42)
        b = FaultEffect.wrong_value(self._result(), 42)
        assert a.rows == b.rows

    def test_wrong_value_on_empty_is_noop(self):
        empty = ResultSet(["a"], [])
        assert FaultEffect.wrong_value(empty, 1).rows == []

    def test_null_value_nullifies_column(self):
        out = FaultEffect.null_value(self._result(), 0)
        assert all(row[0] is None for row in out.rows)

    def test_perturb_covers_types(self):
        assert FaultEffect._perturb(None, 0) == 0
        assert FaultEffect._perturb(True, 0) is False
        assert FaultEffect._perturb(5, 0) != 5
        assert FaultEffect._perturb(1.5, 0) != 1.5
        assert FaultEffect._perturb("ab", 0) == "ba"
        assert FaultEffect._perturb([1, 2], 0) == [1]

    def test_error_effects_raise(self):
        empty = ResultSet([], [])
        with pytest.raises(DatabaseCrash):
            FaultEffect.crash(empty, 0)
        with pytest.raises(ResourceExhausted):
            FaultEffect.hang(empty, 0)
        with pytest.raises(CypherRuntimeError):
            FaultEffect.exception(empty, 0)
