"""Metamorphic self-tests of the reference engine.

The baseline oracles are only sound if their relations hold on a *correct*
engine — so the reference executor must satisfy every one of them.  These
property tests drive randomly generated queries (all six profiles) through
the relations over random graphs; a failure here would mean our definition
of "correct" is itself broken.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GDBMeterTester,
    GDsmithTester,
    GRevTester,
)
from repro.baselines.common import RandomQueryGenerator
from repro.baselines.gamera import relax_one_direction
from repro.baselines.gdbmeter import partition_query
from repro.baselines.gqt import add_random_label, add_tautology, drop_where
from repro.baselines.grev import (
    double_negate_where,
    permute_patterns,
    reverse_patterns,
)
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherError
from repro.engine.executor import Executor
from repro.graph.generator import GraphGenerator


def _run(executor, query):
    try:
        return executor.execute(query)
    except CypherError:
        return None


def _workload(seed, profile):
    graph = GraphGenerator(seed=seed).generate()
    executor = Executor(graph)
    generator = RandomQueryGenerator(graph, random.Random(seed), profile)
    return graph, executor, generator


class TestTLPSelfConsistency:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=60, deadline=None)
    def test_partition_union_equals_true(self, seed):
        _graph, executor, generator = _workload(seed, GDBMeterTester.profile)
        query = generator.generate()
        partitions = partition_query(query)
        if partitions is None:
            return
        results = [_run(executor, part) for part in partitions]
        if any(result is None for result in results):
            return
        union = ResultSet.union_all(results[:3])
        assert union.same_rows(results[3])


class TestEquivalentRewrites:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_pattern_reversal_is_equivalent(self, seed):
        _graph, executor, generator = _workload(seed, GRevTester.profile)
        query = generator.generate()
        variant = reverse_patterns(query)
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            assert base is None and other is None
            return
        assert base.same_rows(other)

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_pattern_permutation_is_equivalent(self, seed):
        _graph, executor, generator = _workload(seed, GRevTester.profile)
        query = generator.generate()
        variant = permute_patterns(query, random.Random(seed + 1))
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            return
        assert base.same_rows(other)

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_double_negation_is_equivalent(self, seed):
        _graph, executor, generator = _workload(seed, GRevTester.profile)
        query = generator.generate()
        variant = double_negate_where(query)
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            return
        assert base.same_rows(other)

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_tautology_is_equivalent(self, seed):
        _graph, executor, generator = _workload(seed, GDsmithTester.profile)
        query = generator.generate()
        variant = add_tautology(query)
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            return
        assert base.same_rows(other)


class TestMonotonicRelations:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_drop_where_grows_result(self, seed):
        _graph, executor, generator = _workload(seed, GDsmithTester.profile)
        query = generator.generate()
        variant = drop_where(query)
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            return
        assert base.is_sub_bag_of(other)

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_label_addition_shrinks_result(self, seed):
        graph, executor, generator = _workload(seed, GDsmithTester.profile)
        query = generator.generate()
        variant = add_random_label(query, graph, random.Random(seed + 2))
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            return
        assert other.is_sub_bag_of(base)

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_direction_relaxation_grows_result(self, seed):
        _graph, executor, generator = _workload(seed, GRevTester.profile)
        query = generator.generate()
        variant = relax_one_direction(query)
        if variant is None:
            return
        base, other = _run(executor, query), _run(executor, variant)
        if base is None or other is None:
            return
        assert base.is_sub_bag_of(other)


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_execution_is_deterministic(self, seed):
        _graph, executor, generator = _workload(seed, GDsmithTester.profile)
        query = generator.generate()
        first, second = _run(executor, query), _run(executor, query)
        if first is None:
            assert second is None
            return
        assert first.rows == second.rows

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_graph_copy_preserves_results(self, seed):
        graph, executor, generator = _workload(seed, GDBMeterTester.profile)
        query = generator.generate()
        clone_executor = Executor(graph.copy())
        first = _run(executor, query)
        second = _run(clone_executor, query)
        if first is None:
            assert second is None
            return
        assert first.same_rows(second)
