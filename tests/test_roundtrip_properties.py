"""Property test: printer and parser are inverse on generated ASTs.

Hypothesis builds random expression and query trees directly over the AST
constructors; printing then reparsing must reproduce the tree exactly (up to
the printer's canonical parenthesization, which the second print exposes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import ast
from repro.cypher.parser import parse_expression, parse_query
from repro.cypher.printer import print_expression, print_query

identifiers = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,5}", fullmatch=True).filter(
    # Avoid colliding with keywords the lexer would uppercase.
    lambda s: s.upper() not in {
        "AND", "OR", "XOR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE",
        "CASE", "WHEN", "THEN", "ELSE", "END", "MATCH", "RETURN", "WITH",
        "UNWIND", "AS", "WHERE", "ORDER", "BY", "SKIP", "LIMIT", "UNION",
        "ALL", "CALL", "YIELD", "DISTINCT", "OPTIONAL", "CREATE", "SET",
        "DELETE", "DETACH", "REMOVE", "MERGE", "STARTS", "ENDS", "CONTAINS",
        "DESC", "ASC", "DESCENDING", "ASCENDING", "ON",
    }
)

literal_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=8
    ),
)

_BINARY_OPS = [
    "+", "-", "*", "/", "%", "^", "=", "<>", "<", "<=", ">", ">=",
    "AND", "OR", "XOR", "IN", "STARTS WITH", "ENDS WITH", "CONTAINS",
]


def expressions(max_depth=4):
    leaves = st.one_of(
        literal_values.map(ast.Literal),
        identifiers.map(ast.Variable),
        st.builds(
            ast.PropertyAccess,
            identifiers.map(ast.Variable),
            identifiers,
        ),
    )

    def extend(children):
        return st.one_of(
            st.builds(
                ast.Binary, st.sampled_from(_BINARY_OPS), children, children
            ),
            st.builds(ast.Unary, st.just("NOT"), children),
            st.builds(ast.IsNull, children, st.booleans()),
            st.builds(
                ast.FunctionCall,
                st.sampled_from(["abs", "head", "toString", "coalesce", "size"]),
                st.tuples(children),
            ),
            st.lists(children, max_size=3).map(
                lambda items: ast.ListLiteral(tuple(items))
            ),
            st.builds(ast.ListIndex, children, children),
            st.builds(
                ast.CaseExpression,
                st.none(),
                st.tuples(st.builds(ast.CaseAlternative, children, children)),
                children,
            ),
            st.builds(
                ast.ListComprehension,
                identifiers,
                children,
                st.none(),
                children,
            ),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestExpressionRoundTrip:
    @given(expressions())
    @settings(max_examples=250, deadline=None)
    def test_print_parse_print_is_stable(self, expr):
        printed = print_expression(expr)
        reparsed = parse_expression(printed)
        assert print_expression(reparsed) == printed

    @given(literal_values)
    @settings(max_examples=150, deadline=None)
    def test_literals_round_trip_exactly(self, value):
        expr = ast.Literal(value)
        reparsed = parse_expression(print_expression(expr))
        assert reparsed == expr


node_patterns = st.builds(
    ast.NodePattern,
    st.one_of(st.none(), identifiers),
    st.lists(identifiers, max_size=2).map(tuple),
    st.none(),
)
rel_patterns = st.builds(
    ast.RelationshipPattern,
    st.one_of(st.none(), identifiers),
    st.lists(identifiers, max_size=2).map(tuple),
    st.sampled_from([ast.OUT, ast.IN, ast.BOTH]),
    st.none(),
)


@st.composite
def path_patterns(draw):
    length = draw(st.integers(min_value=0, max_value=2))
    nodes = tuple(draw(node_patterns) for _ in range(length + 1))
    rels = tuple(draw(rel_patterns) for _ in range(length))
    return ast.PathPattern(nodes, rels)


@st.composite
def queries(draw):
    clauses = []
    n_match = draw(st.integers(min_value=1, max_value=2))
    for _ in range(n_match):
        patterns = tuple(
            draw(path_patterns())
            for _ in range(draw(st.integers(min_value=1, max_value=2)))
        )
        where = draw(st.one_of(st.none(), expressions(max_depth=2)))
        clauses.append(ast.Match(patterns, draw(st.booleans()), where))
    items = tuple(
        ast.ProjectionItem(draw(expressions(max_depth=2)), f"c{i}")
        for i in range(draw(st.integers(min_value=1, max_value=3)))
    )
    clauses.append(ast.Return(items, distinct=draw(st.booleans())))
    return ast.Query(tuple(clauses))


class TestQueryRoundTrip:
    @given(queries())
    @settings(max_examples=120, deadline=None)
    def test_print_parse_print_is_stable(self, query):
        printed = print_query(query)
        reparsed = parse_query(printed)
        assert print_query(reparsed) == printed


class TestSynthesizedQueryRoundTrip:
    """Round-trip idempotence over the *real* synthesizer's output.

    Hypothesis covers the AST constructors; this covers the query shapes
    the campaigns actually emit — the population the query reducer's
    printer→parser round-trip check (:func:`repro.reduce.roundtrips`) must
    hold on.  200 queries across 10 seeds and both structured/schema-free
    dialect configs.
    """

    def test_parse_print_idempotent_on_synthesized_queries(self):
        import random

        from repro.core import QuerySynthesizer
        from repro.core.runner import synthesizer_config_for
        from repro.gdb import create_engine
        from repro.graph import GraphGenerator

        checked = 0
        for seed in range(10):
            _schema, graph = GraphGenerator(seed=seed).generate_with_schema()
            engine = create_engine("neo4j" if seed % 2 else "kuzu")
            synthesizer = QuerySynthesizer(
                graph, rng=random.Random(seed),
                config=synthesizer_config_for(engine),
            )
            for _ in range(20):
                printed = print_query(synthesizer.synthesize().query)
                assert print_query(parse_query(printed)) == printed
                checked += 1
        assert checked == 200

    def test_parse_print_idempotent_on_write_statements(self):
        """The stateful synthesizer's write statements round-trip too.

        Covers the write-clause grammar the read-only population never
        exercises: CREATE (standalone and relationship-wiring), MERGE
        (match and create arms), SET, plain DELETE, DETACH DELETE, and
        REMOVE of both properties and labels.  The sequence reducer
        re-parses recorded statements, so this is the shape it depends on.
        """
        import random

        from repro.core.runner import synthesizer_config_for
        from repro.gdb import create_engine
        from repro.graph import GraphGenerator
        from repro.synth.state import StatefulSynthesizer, StateModel

        checked = 0
        seen_kinds = set()
        for seed in range(10):
            _schema, graph = GraphGenerator(seed=seed).generate_with_schema()
            engine = create_engine("memgraph" if seed % 2 else "falkordb")
            model = StateModel(
                graph,
                enforce_rel_uniqueness=engine.dialect.enforces_rel_uniqueness,
                supports_call_procedures=(
                    engine.dialect.supports_call_procedures
                ),
            )
            synthesizer = StatefulSynthesizer(
                model,
                random.Random(seed),
                config=synthesizer_config_for(engine),
                stateful_ratio=1.0,  # writes only
            )
            for _ in range(20):
                proposal = synthesizer.propose()
                assert proposal.is_write
                seen_kinds.add(proposal.statement_kind)
                printed = proposal.text
                assert print_query(parse_query(printed)) == printed
                # Keep the shadow in lockstep so later statements stay
                # valid against the evolved state.
                model.apply(proposal.query)
                checked += 1
        assert checked == 200
        assert seen_kinds == {"create", "merge", "set", "delete", "remove"}
