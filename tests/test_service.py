"""Tests for the fault-tolerant campaign service.

Covers the four layers of :mod:`repro.service` — job specs, the
lease/heartbeat scheduler, the HTTP face, the client — plus the
cross-cutting robustness contracts this PR documents:

* service results are byte-identical to uninterrupted inline runs, even
  across worker crashes, heartbeat losses, lease revocations, an abrupt
  scheduler death (``kill -9`` analogue) and a torn journal;
* admission control refuses over-capacity submissions with a
  deterministic ``Retry-After`` and refuses everything during drain;
* SIGTERM drains gracefully: exit 0, journal flushed, restart resumes;
* quarantine holes surface as exit code 3 from ``repro campaign``;
* ``repro watch --once --format json`` shares shapes (and totals) with
  ``repro stats --format json``.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.reporting import (
    campaign_to_dict,
    completed_cells_from_events,
    load_event_stream,
)
from repro.experiments.campaign import run_tool_campaign
from repro.obs.follow import EventFollower, watch_json
from repro.runtime.supervisor import ChaosConfig
from repro.service import (
    Backpressure,
    CampaignScheduler,
    JobSpec,
    ServiceDraining,
    replay_service_journal,
)

ENGINE = "falkordb"
FAST = dict(lease_seconds=60.0, heartbeat_seconds=0.2, poll_interval=0.02)


def spec_dict(**overrides):
    base = {"testers": ["GQS"], "engines": [ENGINE], "seeds": [0],
            "budget_seconds": 3.0}
    base.update(overrides)
    return base


def fingerprint(results):
    return {
        key: json.dumps(campaign_to_dict(result), sort_keys=True)
        for key, result in results.items()
    }


def inline_fingerprint(done, budget_seconds):
    return {
        key: json.dumps(
            campaign_to_dict(run_tool_campaign(
                key[0], key[1], seed=key[2], budget_seconds=budget_seconds
            )),
            sort_keys=True,
        )
        for key in done
    }


class ScriptedServiceChaos(ChaosConfig):
    """Deterministic per-attempt chaos for scheduler tests."""

    def __init__(self, directives=(), stalls=(), truncate=False):
        super().__init__(rate=0.0)
        self._directives = dict(directives)  # attempt -> kind
        self._stalls = set(stalls)  # attempts with suppressed heartbeats
        self._truncate = truncate

    def directive(self, key, attempt):
        return self._directives.get(attempt)

    def heartbeat_stall(self, key, attempt):
        return attempt in self._stalls

    def truncates(self, key):
        return self._truncate


# -- job specs --------------------------------------------------------------


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec.from_dict(spec_dict(
            testers=["GQS", "GQT"], seeds=[0, 1], derive_seeds=True,
            execution_mode="compiled", adaptive="ucb", stateful=0.5,
            record_metrics=True,
        ))
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("bad", [
        {"nope": 1},
        {"testers": []},
        {"testers": ["NotATester"]},
        {"engines": ["NotAnEngine"]},
        {"seeds": []},
        {"seeds": [True]},
        {"budget_seconds": 0},
        {"execution_mode": "quantum"},
        {"adaptive": "greedy"},
        {"stateful": 1.5},
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            JobSpec.from_dict(spec_dict(**bad))

    def test_rejects_empty_decomposition(self):
        # GDsmith does not support kuzu: the whole grid is skipped cells.
        spec = JobSpec.from_dict(
            spec_dict(testers=["GDsmith"], engines=["kuzu"])
        )
        with pytest.raises(ValueError):
            spec.cells()

    def test_worker_spec_mirrors_parallel_runner_task(self):
        from repro.runtime.parallel import ParallelCampaignRunner

        spec = JobSpec.from_dict(spec_dict(record_metrics=True))
        cell = spec.cells()[0]
        runner = ParallelCampaignRunner(jobs=1, record_metrics=True)
        assert spec.worker_spec(cell) == runner._task(cell)["spec"]


# -- journal replay ---------------------------------------------------------


class TestJournalReplay:
    def test_counts_failed_attempts_and_last_complete_wins(self):
        campaign = {"queries_run": 7}
        events = [
            {"event": "job_submitted", "job": "job-0001",
             "spec": spec_dict(), "cells": [["GQS", ENGINE, 0]]},
            {"event": "lease", "job": "job-0001", "tester": "GQS",
             "engine": ENGINE, "seed": 0, "attempt": 1},
            {"event": "lease_revoked", "job": "job-0001", "tester": "GQS",
             "engine": ENGINE, "seed": 0, "attempt": 1,
             "reason": "missed_heartbeat", "will_retry": True},
            {"event": "cell_failed", "job": "job-0001", "tester": "GQS",
             "engine": ENGINE, "seed": 0, "attempt": 2,
             "kind": "exception", "will_retry": True},
            {"event": "cell_complete", "job": "job-0001", "tester": "GQS",
             "engine": ENGINE, "seed": 0, "attempts": 3,
             "campaign": campaign},
        ]
        state = replay_service_journal(events)
        record = state["jobs"]["job-0001"]
        assert record["failures"][("GQS", ENGINE, 0)] == 2
        assert record["done"][("GQS", ENGINE, 0)]["attempts"] == 3
        assert state["order"] == ["job-0001"]

    def test_cancelled_revocations_consume_no_budget(self):
        events = [
            {"event": "job_submitted", "job": "job-0001",
             "spec": spec_dict(), "cells": [["GQS", ENGINE, 0]]},
            {"event": "lease_revoked", "job": "job-0001", "tester": "GQS",
             "engine": ENGINE, "seed": 0, "attempt": 1,
             "reason": "cancelled", "will_retry": False},
            {"event": "job_cancelled", "job": "job-0001"},
        ]
        record = replay_service_journal(events)["jobs"]["job-0001"]
        assert record["failures"] == {}
        assert record["cancelled"]


# -- the scheduler ----------------------------------------------------------


class TestScheduler:
    def test_grid_results_byte_identical_to_inline(self, tmp_path):
        scheduler = CampaignScheduler(tmp_path / "svc.jsonl", jobs=2,
                                      **FAST)
        scheduler.submit(spec_dict(testers=["GQS", "GQT"], seeds=[0, 1]))
        scheduler.run_until(timeout=120)
        scheduler.drain()
        scheduler.tick()
        done = completed_cells_from_events(
            load_event_stream(tmp_path / "svc.jsonl")
        )
        assert len(done) == 4
        assert fingerprint(done) == inline_fingerprint(done, 3.0)

    def test_backpressure_and_draining_refusals(self, tmp_path):
        scheduler = CampaignScheduler(tmp_path / "svc.jsonl", jobs=1,
                                      capacity=2, **FAST)
        with pytest.raises(Backpressure) as info:
            scheduler.submit(spec_dict(testers=["GQS", "GQT"],
                                       seeds=[0, 1]))
        assert info.value.retry_after >= 1
        scheduler.drain()
        with pytest.raises(ServiceDraining):
            scheduler.submit(spec_dict())
        scheduler.tick()

    def test_missed_heartbeats_revoke_then_retry_succeeds(self, tmp_path):
        chaos = ScriptedServiceChaos(directives={1: "hang"}, stalls={1})
        scheduler = CampaignScheduler(
            tmp_path / "svc.jsonl", jobs=1, heartbeat_seconds=0.1,
            heartbeat_misses=2, cell_retries=2, retry_backoff=0.01,
            lease_seconds=60.0, poll_interval=0.02, chaos=chaos,
        )
        record = scheduler.submit(spec_dict())
        scheduler.run_until(timeout=60)
        scheduler.drain()
        scheduler.tick()
        events = load_event_stream(tmp_path / "svc.jsonl")
        revoked = [e for e in events if e["event"] == "lease_revoked"]
        assert [e["reason"] for e in revoked] == ["missed_heartbeat"]
        assert revoked[0]["will_retry"] is True
        counts = scheduler.job_record(record["job"])["counts"]
        assert counts["done"] == 1

    def test_worker_crashes_exhaust_retries_into_quarantine(self, tmp_path):
        chaos = ScriptedServiceChaos(
            directives={1: "crash", 2: "crash", 3: "crash"}
        )
        scheduler = CampaignScheduler(
            tmp_path / "svc.jsonl", jobs=1, cell_retries=1,
            retry_backoff=0.01, chaos=chaos, **FAST,
        )
        record = scheduler.submit(spec_dict(budget_seconds=2.0))
        scheduler.run_until(timeout=60)
        scheduler.drain()
        scheduler.tick()
        events = load_event_stream(tmp_path / "svc.jsonl")
        kinds = [e["event"] for e in events
                 if e["event"] in ("lease", "lease_revoked", "cell_retry",
                                   "cell_quarantined")]
        assert kinds == ["lease", "lease_revoked", "cell_retry",
                         "lease", "lease_revoked", "cell_quarantined"]
        counts = scheduler.job_record(record["job"])["counts"]
        assert counts["quarantined"] == 1
        assert scheduler.job_record(record["job"])["status"] == "complete"

    def test_abrupt_death_and_restart_is_byte_identical(self, tmp_path):
        journal = tmp_path / "svc.jsonl"
        first = CampaignScheduler(journal, jobs=2, **FAST)
        record = first.submit(
            spec_dict(testers=["GQS", "GQT", "GRev"], seeds=[0, 1])
        )
        first.run_until(
            lambda: first.job_record(record["job"])["counts"]["done"] >= 2,
            timeout=120,
        )
        first.close()  # kill -9 analogue: no service_stop, leases die

        second = CampaignScheduler(journal, jobs=2, **FAST)
        recovered = second.job_record(record["job"])["counts"]
        assert recovered["done"] >= 2  # fsync'd checkpoints survived
        second.run_until(timeout=120)
        second.drain()
        second.tick()
        done = completed_cells_from_events(load_event_stream(journal))
        assert len(done) == 6
        assert fingerprint(done) == inline_fingerprint(done, 3.0)
        # Completed cells were never re-leased by the second scheduler.
        events = load_event_stream(journal)
        starts = [i for i, e in enumerate(events)
                  if e["event"] == "service_start"]
        completed_before = {
            (e["tester"], e["engine"], e["seed"])
            for e in events[:starts[1]] if e["event"] == "cell_complete"
        }
        leased_after = {
            (e["tester"], e["engine"], e["seed"])
            for e in events[starts[1]:] if e["event"] == "lease"
        }
        assert not completed_before & leased_after

    def test_torn_journal_tail_recovers(self, tmp_path):
        journal = tmp_path / "svc.jsonl"
        first = CampaignScheduler(journal, jobs=1, **FAST)
        first.submit(spec_dict(testers=["GQS", "GQT"]))
        first.run_until(timeout=120)
        first.close()
        with open(journal, "r+b") as handle:
            size = journal.stat().st_size
            handle.truncate(size - 40)  # tear the final record mid-line
        second = CampaignScheduler(journal, jobs=1, **FAST)
        second.run_until(timeout=120)
        second.drain()
        second.tick()
        done = completed_cells_from_events(load_event_stream(journal))
        assert len(done) == 2
        assert fingerprint(done) == inline_fingerprint(done, 3.0)

    def test_cancel_drops_pending_and_keeps_results(self, tmp_path):
        journal = tmp_path / "svc.jsonl"
        scheduler = CampaignScheduler(journal, jobs=1, **FAST)
        record = scheduler.submit(
            spec_dict(testers=["GQS", "GQT", "GRev"])
        )
        scheduler.run_until(
            lambda: scheduler.job_record(record["job"])["counts"]["done"]
            >= 1,
            timeout=120,
        )
        cancelled = scheduler.cancel(record["job"])
        assert cancelled["status"] == "cancelled"
        counts = cancelled["counts"]
        assert counts["done"] >= 1
        assert counts["cancelled"] >= 1
        assert counts["pending"] == 0 and counts["leased"] == 0
        # Cancellation is journaled: a restart honours it.
        scheduler.drain()
        scheduler.tick()
        revived = CampaignScheduler(journal, jobs=1, **FAST)
        assert revived.job_record(record["job"])["status"] == "cancelled"
        assert revived.stats()["pending"] == 0
        revived.drain()
        revived.tick()


# -- HTTP face --------------------------------------------------------------


class TestHttpRoutes:
    """Routing semantics via the pure `_route` dispatcher (no sockets)."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import ServiceServer

        scheduler = CampaignScheduler(tmp_path / "svc.jsonl", jobs=1,
                                      capacity=2, **FAST)
        yield ServiceServer(scheduler)
        scheduler.drain()
        scheduler.tick()

    def test_submit_accepts_and_reads_back(self, server):
        status, _, body = server._route("POST", "/jobs", spec_dict())
        assert status == 202
        job = body["job"]
        status, _, record = server._route("GET", f"/jobs/{job}", None)
        assert status == 200 and record["counts"]["pending"] == 1
        status, _, listing = server._route("GET", "/jobs", None)
        assert status == 200 and len(listing["jobs"]) == 1

    def test_malformed_spec_is_400(self, server):
        status, _, body = server._route(
            "POST", "/jobs", {"testers": ["NotATester"]}
        )
        assert status == 400 and "NotATester" in body["error"]

    def test_backpressure_is_429_with_retry_after(self, server):
        assert server._route("POST", "/jobs", spec_dict())[0] == 202
        status, headers, body = server._route(
            "POST", "/jobs", spec_dict(testers=["GQS", "GQT"])
        )
        assert status == 429
        assert int(headers["Retry-After"]) == body["retry_after"] >= 1

    def test_drain_then_submit_is_503(self, server):
        status, _, body = server._route("POST", "/drain", None)
        assert status == 202 and body["draining"]
        assert server._route("POST", "/jobs", spec_dict())[0] == 503
        health = server._route("GET", "/health", None)[2]
        assert health["status"] == "draining"

    def test_unknown_job_and_route_are_404(self, server):
        assert server._route("GET", "/jobs/job-9999", None)[0] == 404
        assert server._route("GET", "/nope", None)[0] == 404
        assert server._route("DELETE", "/jobs", None)[0] == 405

    def test_cancel_route(self, server):
        job = server._route("POST", "/jobs", spec_dict())[2]["job"]
        status, _, body = server._route("POST", f"/jobs/{job}/cancel",
                                        None)
        assert status == 200 and body["status"] == "cancelled"


class TestHttpEndToEnd:
    def test_client_against_live_server(self, tmp_path):
        import asyncio

        from repro.service import ServiceClient, ServiceServer

        scheduler = CampaignScheduler(tmp_path / "svc.jsonl", jobs=1,
                                      **FAST)

        async def scenario():
            server = ServiceServer(scheduler)
            host, port = await server.start()
            client = ServiceClient(f"http://{host}:{port}")
            loop = asyncio.get_running_loop()
            pump = asyncio.ensure_future(scheduler.run_async())
            record = await loop.run_in_executor(
                None, lambda: client.submit(spec_dict(budget_seconds=2.0))
            )
            final = await loop.run_in_executor(
                None, lambda: client.wait(record["job"], timeout=60)
            )
            await loop.run_in_executor(None, client.drain)
            await asyncio.wait_for(pump, 30)
            await server.stop()
            return final

        final = asyncio.run(scenario())
        assert final["status"] == "complete"
        assert final["counts"]["done"] == 1


# -- process-level signal handling ------------------------------------------


def _serve_subprocess(journal, *extra):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(journal),
         "--port", "0", "--jobs", "2", "--heartbeat-seconds", "0.2",
         *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:\d+", line)
    if not match:
        proc.kill()
        proc.wait()
        pytest.fail(f"serve announced no endpoint: {line!r}")
    return proc, match.group(0)


def _cli(env_url, *argv):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env, capture_output=True, text=True, timeout=120,
    )


class TestServiceSignals:
    def test_revoked_worker_signals_do_not_drain_the_service(self, tmp_path):
        # Regression: lease workers are forked after the serving loop
        # has registered its SIGTERM/SIGINT handlers, so they inherit
        # the loop's signal wakeup fd.  Revoking a live lease
        # terminates the worker with SIGTERM — without the worker-side
        # signal reset, the worker's inherited handler writes the
        # signum into the *parent's* wakeup pipe and the service
        # drains itself as if it had been signalled.
        journal = tmp_path / "svc.jsonl"

        async def scenario():
            loop = asyncio.get_running_loop()
            scheduler = CampaignScheduler(journal, jobs=1, **FAST)
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    signum, scheduler.drain, signal.Signals(signum).name
                )
            try:
                scheduler.submit(spec_dict(budget_seconds=600.0))
                deadline = loop.time() + 30.0
                while not scheduler._leases and loop.time() < deadline:
                    scheduler.tick()
                    await asyncio.sleep(0.02)
                assert scheduler._leases, "cell never leased"
                scheduler.cancel("job-0001")  # SIGTERMs the live worker
                for _ in range(25):  # let any stray wakeup byte dispatch
                    await asyncio.sleep(0.02)
                    scheduler.tick()
                return scheduler.draining
            finally:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)
                scheduler.drain()
                scheduler.tick()

        assert asyncio.run(scenario()) is False

    def test_sigterm_drains_exits_zero_and_restart_resumes(self, tmp_path):
        journal = tmp_path / "svc.jsonl"
        proc, url = _serve_subprocess(journal)
        try:
            out = _cli(url, "submit", "--url", url, "--tester", "GQS",
                       "--tester", "GQT", "--seeds", "2",
                       "--minutes", "0.1")
            assert out.returncode == 0, out.stderr
            # SIGTERM mid-grid: graceful drain must exit 0 with the
            # journal flushed and resumable.
            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        events = load_event_stream(journal)
        assert any(e["event"] == "service_stop" for e in events)

        # Restart: the journal replays and the grid completes exactly.
        proc2, url2 = _serve_subprocess(journal)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                out = _cli(url2, "jobs", "--url", url2, "--job",
                           "job-0001", "--format", "json")
                record = json.loads(out.stdout)
                if record["status"] != "running":
                    break
                time.sleep(0.3)
            assert record["status"] == "complete"
            assert record["counts"]["done"] == 4
            out = _cli(url2, "cancel", "--url", url2, "--drain")
            assert out.returncode == 0
            assert proc2.wait(timeout=60) == 0
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()
        done = completed_cells_from_events(load_event_stream(journal))
        assert len(done) == 4
        assert fingerprint(done) == inline_fingerprint(done, 6.0)


# -- CLI surfaces -----------------------------------------------------------


class TestExitCodes:
    def test_quarantined_grid_exits_3(self, tmp_path, capsys):
        # Chaos at rate 1.0 with no retries: every cell's single attempt
        # is killed, the whole grid quarantines, and that must not look
        # like success to CI.
        code = main([
            "campaign", "--tester", "GQS", "--engine", ENGINE,
            "--minutes", "0.05", "--seeds", "2", "--jobs", "1",
            "--chaos", "1.0,7", "--cell-retries", "0",
            "--cell-timeout", "3",
            "--events", str(tmp_path / "log.jsonl"),
        ])
        assert code == 3
        assert "quarantined" in capsys.readouterr().err

    def test_whole_grid_exits_0(self, tmp_path):
        code = main([
            "campaign", "--tester", "GQS", "--engine", ENGINE,
            "--minutes", "0.05", "--seeds", "2", "--jobs", "1",
            "--events", str(tmp_path / "log.jsonl"),
        ])
        assert code == 0


class TestWatchJson:
    @pytest.fixture(scope="class")
    def service_log(self, tmp_path_factory):
        journal = tmp_path_factory.mktemp("watchjson") / "svc.jsonl"
        scheduler = CampaignScheduler(journal, jobs=1, **FAST)
        scheduler.submit(spec_dict(record_metrics=True))
        scheduler.run_until(timeout=120)
        scheduler.drain()
        scheduler.tick()
        return journal

    def test_once_json_matches_stats_json(self, service_log, capsys):
        assert main(["watch", str(service_log), "--once",
                     "--format", "json"]) == 0
        watched = json.loads(capsys.readouterr().out)
        assert main(["stats", str(service_log), "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        # The watch payload *is* the stats payload plus live state.
        for key in ("schema", "queries", "faults", "counters",
                    "supervisor"):
            assert watched[key] == stats[key]
        assert watched["watch"]["finished"] is True
        assert watched["watch"]["status"] == "complete"
        assert watched["watch"]["queries"] == sum(
            sum(row.values()) for row in stats["queries"].values()
        )

    def test_follower_reports_torn_offsets(self, service_log, tmp_path):
        clean = service_log.read_bytes()
        damaged = tmp_path / "damaged.jsonl"
        damaged.write_bytes(clean + b"%%% torn %%%\n")
        follower = EventFollower(damaged)
        follower.poll()
        assert follower.skipped == 1
        assert follower.skipped_lines == [
            {"offset": len(clean), "length": 12}
        ]
        payload = watch_json(follower)
        assert payload["torn_lines"] == follower.skipped_lines
        assert payload["skipped_lines"] == 1

    def test_stats_warning_names_byte_offsets(self, service_log, tmp_path,
                                              capsys):
        clean = service_log.read_bytes()
        damaged = tmp_path / "damaged.jsonl"
        damaged.write_bytes(clean + b"%%% torn %%%\n")
        assert main(["stats", str(damaged)]) == 0
        err = capsys.readouterr().err
        assert f"byte offset {len(clean)}" in err

    def test_service_log_watch_finished_semantics(self, service_log):
        follower = EventFollower(service_log)
        follower.poll()
        assert follower.finished
        # The folded cells carry the service lease lifecycle.
        assert all(cell["status"] == "done"
                   for cell in follower.cells.values())
