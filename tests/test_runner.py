"""Tests for the GQS campaign runner."""


from repro.core.runner import BugReport, CampaignResult, GQSTester, synthesizer_config_for
from repro.gdb import ReferenceGDB, create_engine


class TestSynthesizerConfigForDialect:
    def test_kuzu_config(self):
        engine = create_engine("kuzu")
        config = synthesizer_config_for(engine)
        assert config.needs_uniqueness_predicates
        assert not config.supports_call_procedures

    def test_neo4j_config(self):
        engine = create_engine("neo4j")
        config = synthesizer_config_for(engine)
        assert not config.needs_uniqueness_predicates
        assert config.supports_call_procedures

    def test_overrides(self):
        engine = create_engine("neo4j")
        config = synthesizer_config_for(engine, union_probability=0.5)
        assert config.union_probability == 0.5


class TestCampaign:
    def test_no_false_positives_on_clean_engine(self):
        """GQS on a correct engine must report nothing (no-FP design)."""
        engine = ReferenceGDB()
        tester = GQSTester()
        result = tester.run(engine, budget_seconds=30.0, seed=0)
        assert result.reports == []
        assert result.queries_run > 20

    def test_detects_faults_with_open_gates(self):
        engine = create_engine("falkordb", gate_scale=0.0)
        tester = GQSTester()
        result = tester.run(engine, budget_seconds=30.0, seed=1)
        assert len(result.detected_faults) >= 3
        assert result.false_positive_count == 0

    def test_budget_respected(self):
        engine = ReferenceGDB()
        result = GQSTester().run(engine, budget_seconds=5.0, seed=2)
        # The clock may overshoot by at most one query's cost; a large UNION
        # query can cost a few simulated seconds on its own.
        assert result.sim_seconds < 5.0 + 6.0

    def test_max_queries_respected(self):
        engine = ReferenceGDB()
        result = GQSTester().run(
            engine, budget_seconds=1e9, seed=3, max_queries=25
        )
        assert result.queries_run == 25

    def test_timeline_is_monotone_and_unique(self):
        engine = create_engine("memgraph", gate_scale=0.05)
        result = GQSTester().run(engine, budget_seconds=60.0, seed=4)
        times = [when for when, _fid in result.timeline]
        assert times == sorted(times)
        fault_ids = [fid for _when, fid in result.timeline]
        assert len(fault_ids) == len(set(fault_ids))

    def test_trigger_records_capture_metrics(self):
        engine = create_engine("falkordb", gate_scale=0.0)
        result = GQSTester().run(engine, budget_seconds=30.0, seed=5)
        assert result.trigger_records
        record = result.trigger_records[0]
        for key in ("fault_id", "n_steps", "patterns", "depth",
                    "clauses", "dependencies", "clause_names", "query_text"):
            assert key in record

    def test_reports_carry_queries(self):
        engine = create_engine("falkordb", gate_scale=0.0)
        result = GQSTester().run(engine, budget_seconds=20.0, seed=6)
        for report in result.reports:
            assert report.query_text
            assert report.kind in ("logic", "error")

    def test_deterministic_given_seed(self):
        a = GQSTester().run(
            create_engine("kuzu", gate_scale=0.1), budget_seconds=20.0, seed=7
        )
        b = GQSTester().run(
            create_engine("kuzu", gate_scale=0.1), budget_seconds=20.0, seed=7
        )
        assert a.detected_faults == b.detected_faults
        assert a.queries_run == b.queries_run

    def test_crash_recovery(self):
        """The campaign restarts crashed instances and keeps testing."""
        from repro.gdb import faults_for

        engine = create_engine("kuzu", gate_scale=0.0)
        # Leave only the crash fault so logic faults cannot mask it.
        engine.faults = [
            fault for fault in faults_for("kuzu") if fault.fault_id == "kuzu-O1"
        ]
        result = GQSTester().run(engine, budget_seconds=30.0, seed=8)
        assert any(r.fault_id == "kuzu-O1" for r in result.reports)
        # The campaign continued after the crash.
        assert result.queries_run > 10


class TestCampaignResult:
    def test_detected_faults_deduplicated(self):
        result = CampaignResult("T", "e")
        for _ in range(2):
            result.reports.append(
                BugReport("T", "e", "logic", "d", "q", "f1", 0.0)
            )
        result.reports.append(BugReport("T", "e", "logic", "d", "q", None, 0.0))
        assert result.detected_faults == ["f1"]
        assert result.false_positive_count == 1

    def test_merge(self):
        a = CampaignResult("T", "e1")
        a.queries_run = 5
        a.sim_seconds = 10.0
        b = CampaignResult("T", "e2")
        b.queries_run = 3
        b.sim_seconds = 20.0
        merged = a.merge(b)
        assert merged.queries_run == 8
        assert merged.sim_seconds == 20.0
