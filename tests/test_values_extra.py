"""Additional property tests for the value model and binding layer."""


from hypothesis import given
from hypothesis import strategies as st

from repro.engine.binding import ResultSet
from repro.graph import values as V

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=6),
)
nested = st.recursive(scalars, lambda inner: st.lists(inner, max_size=3),
                      max_leaves=8)


class TestEqualityLaws:
    @given(nested, nested)
    def test_symmetry(self, a, b):
        assert V.ternary_equals(a, b) == V.ternary_equals(b, a)

    @given(nested, nested)
    def test_inequality_is_negation(self, a, b):
        eq = V.ternary_equals(a, b)
        neq = V.ternary_not(eq)
        # `a <> b` is defined as NOT (a = b); verify the Kleene composition.
        if eq is None:
            assert neq is None
        else:
            assert neq == (not eq)

    @given(nested, nested)
    def test_compare_antisymmetric(self, a, b):
        forward = V.ternary_compare(a, b)
        backward = V.ternary_compare(b, a)
        if forward is None:
            assert backward is None
        else:
            assert backward == -forward


class TestOrderConsistency:
    @given(nested, nested)
    def test_order_refines_comparability(self, a, b):
        """When Cypher says a < b, the global sort order must agree."""
        verdict = V.ternary_compare(a, b)
        if verdict is None:
            return
        ka, kb = V.order_key(a), V.order_key(b)
        if verdict < 0:
            assert ka < kb
        elif verdict > 0:
            assert kb < ka

    @given(st.lists(nested, max_size=8))
    def test_sorting_never_fails(self, values):
        V.sort_values(values)
        V.sort_values(values, descending=True)

    @given(st.lists(nested, max_size=8))
    def test_descending_is_reverse_of_ascending(self, values):
        ascending = V.sort_values(values)
        descending = V.sort_values(values, descending=True)
        assert [V.equivalence_key(v) for v in descending] == [
            V.equivalence_key(v) for v in reversed(ascending)
        ]


class TestResultSetBagLaws:
    @given(st.lists(st.tuples(nested), max_size=6))
    def test_same_rows_reflexive(self, rows):
        rs = ResultSet(["x"], rows)
        assert rs.same_rows(ResultSet(["x"], list(rows)))

    @given(st.lists(st.tuples(nested), max_size=6),
           st.lists(st.tuples(nested), max_size=6))
    def test_same_rows_symmetric(self, rows_a, rows_b):
        a = ResultSet(["x"], rows_a)
        b = ResultSet(["x"], rows_b)
        assert a.same_rows(b) == b.same_rows(a)

    @given(st.lists(st.tuples(nested), max_size=6),
           st.lists(st.tuples(nested), max_size=4))
    def test_sub_bag_of_union(self, rows_a, rows_b):
        a = ResultSet(["x"], rows_a)
        b = ResultSet(["x"], rows_b)
        union = ResultSet.union_all([a, b])
        assert a.is_sub_bag_of(union)
        assert b.is_sub_bag_of(union)

    @given(st.lists(st.tuples(nested), max_size=6))
    def test_sub_bag_antisymmetry_gives_equality(self, rows):
        a = ResultSet(["x"], rows)
        b = ResultSet(["x"], list(reversed(rows)))
        assert a.is_sub_bag_of(b) and b.is_sub_bag_of(a)
        assert a.same_rows(b)
