"""Robustness tests: cell supervisor, resource envelope, chaos harness.

The acceptance bar (ISSUE 5): a grid with injected worker crashes, hangs,
and budget-blowing queries completes with every healthy cell byte-identical
to a fault-free ``jobs=1`` run; failed cells surface as ``cell_failed`` /
``cell_quarantined`` events with attempt counts; ``--resume`` after a
mid-grid kill re-runs only unfinished cells; and a blown evaluation budget
is a ``harness_error``, never a false bug.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass

import pytest

from repro.core.reporting import campaign_to_dict, load_event_stream
from repro.engine import ENVELOPE, EvaluationBudgetExceeded, evaluation_budget
from repro.gdb import create_engine
from repro.runtime import (
    CampaignCell,
    CellFailedError,
    CellSupervisor,
    ChaosConfig,
    EventLog,
    ParallelCampaignRunner,
)
from repro.runtime.supervisor import DEFAULT_CHAOS_TIMEOUT

ENGINE = "falkordb"


def cells_for(*testers, seed=0, budget=2.0):
    return [
        CampaignCell(tester, ENGINE, seed, budget, gate_scale=0.05)
        for tester in testers
    ]


def fingerprint(results):
    return json.dumps(
        {"|".join(map(str, key)): campaign_to_dict(result)
         for key, result in results.items()},
        sort_keys=True,
    )


def kinds_of(events):
    return [event["event"] for event in events]


@dataclass(frozen=True)
class ScriptedChaos(ChaosConfig):
    """Chaos with a fixed per-attempt directive script (test determinism)."""

    script: tuple = ()
    truncate_all: bool = False

    def directive(self, key, attempt):
        if attempt <= len(self.script):
            return self.script[attempt - 1]
        return None

    def truncates(self, key):
        return self.truncate_all


# -- the resource envelope --------------------------------------------------


class TestResourceEnvelope:
    def test_disabled_by_default(self):
        assert ENVELOPE.limit is None

    def test_budget_scopes_and_raises(self):
        with evaluation_budget(3) as env:
            env.charge(3)
            with pytest.raises(EvaluationBudgetExceeded, match="3 steps"):
                env.charge()
        assert ENVELOPE.limit is None

    def test_budgets_nest_and_restore_after_blowing(self):
        with evaluation_budget(100) as outer:
            outer.charge(40)
            with pytest.raises(EvaluationBudgetExceeded):
                with evaluation_budget(2):
                    ENVELOPE.charge(5)
            # The outer scope's counter survives the inner blow-up.
            assert ENVELOPE.limit == 100 and ENVELOPE.steps == 40
        assert ENVELOPE.limit is None

    def test_none_budget_is_a_no_op(self):
        before = (ENVELOPE.limit, ENVELOPE.steps)
        with evaluation_budget(None):
            pass
        assert (ENVELOPE.limit, ENVELOPE.steps) == before

    def test_recursion_error_surfaces_as_budget_error(self, monkeypatch):
        engine = create_engine(ENGINE)

        def blow_stack(query):
            raise RecursionError("maximum recursion depth exceeded")

        monkeypatch.setattr(engine, "_execute", blow_stack)
        with pytest.raises(EvaluationBudgetExceeded, match="recursion"):
            engine.execute("MATCH (n) RETURN n")


class TestKernelStepBudget:
    def test_blown_budget_is_harness_error_not_bug(self):
        from repro.experiments.campaign import run_tool_campaign

        log = EventLog()
        result = run_tool_campaign(
            "GQS", ENGINE, budget_seconds=2.0, gate_scale=0.05,
            events=log, step_budget=1,
        )
        assert result.harness_errors > 0
        # Aborted judgements still consume their proposal...
        assert result.queries_run >= result.harness_errors
        # ...but never produce a (false) bug report.
        assert result.reports == []
        errors = [e for e in log.events if e["event"] == "harness_error"]
        assert len(errors) == result.harness_errors
        assert all("EvaluationBudgetExceeded" in e["error"] for e in errors)
        assert ENVELOPE.limit is None  # envelope restored after the run

    def test_budgeted_campaign_is_deterministic(self):
        from repro.experiments.campaign import run_tool_campaign

        runs = [
            campaign_to_dict(run_tool_campaign(
                "GQS", ENGINE, budget_seconds=2.0, gate_scale=0.05,
                step_budget=200,
            ))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_harness_errors_round_trip_serialization(self):
        from repro.core.reporting import campaign_from_dict
        from repro.runtime import CampaignResult

        result = CampaignResult("GQS", ENGINE)
        result.harness_errors = 3
        data = campaign_to_dict(result)
        assert data["harness_errors"] == 3
        assert campaign_from_dict(data).harness_errors == 3
        # Older logs without the field load as zero.
        data.pop("harness_errors")
        assert campaign_from_dict(data).harness_errors == 0


class TestOracleStepBudget:
    BUNDLE = {"format": "gqs-bundle/1", "signature": "sig", "fault_id": "f1"}

    def test_budget_blown_replay_rejects_candidate(self, monkeypatch):
        from repro.reduce import ReductionOracle

        def hungry_side(candidate, faults_enabled):
            if ENVELOPE.limit is not None:
                ENVELOPE.charge(10_000)
            return {"rows": [[1]], "columns": ["a"],
                    "fault_id": "f1" if faults_enabled else None}

        monkeypatch.setattr("repro.reduce.oracle._execute_side",
                            hungry_side)
        unbudgeted = ReductionOracle(dict(self.BUNDLE))
        assert unbudgeted.accepts() is True
        budgeted = ReductionOracle(dict(self.BUNDLE), step_budget=5)
        sides = budgeted.outcome()
        assert sides["actual"]["error"].startswith(
            "EvaluationBudgetExceeded"
        )
        assert sides["actual"]["fault_id"] is None
        assert budgeted.accepts() is False
        assert ENVELOPE.limit is None


# -- chaos configuration ----------------------------------------------------


class TestChaosConfig:
    def test_parse(self):
        assert ChaosConfig.parse("0.3") == ChaosConfig(rate=0.3, seed=0)
        assert ChaosConfig.parse("0.5,9") == ChaosConfig(rate=0.5, seed=9)

    @pytest.mark.parametrize("spec", ["", "nonsense", "0.5,x", "2.0",
                                      "0.1,2,3", "-0.1"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            ChaosConfig.parse(spec)

    def test_draws_are_deterministic_and_attempt_indexed(self):
        chaos = ChaosConfig(rate=0.5, seed=7)
        key = ("GQS", ENGINE, 123)
        draws = [chaos.directive(key, attempt) for attempt in (1, 2, 3)]
        assert draws == [ChaosConfig(rate=0.5, seed=7).directive(key, a)
                         for a in (1, 2, 3)]
        assert chaos.truncates(key) == chaos.truncates(key)

    def test_rate_bounds(self):
        never = ChaosConfig(rate=0.0, seed=1)
        always = ChaosConfig(rate=1.0, seed=1)
        keys = [("GQS", ENGINE, s) for s in range(20)]
        assert all(never.directive(k, 1) is None for k in keys)
        assert all(always.directive(k, 1) in ("crash", "hang", "error")
                   for k in keys)
        assert not any(never.truncates(k) for k in keys)
        assert all(always.truncates(k) for k in keys)

    def test_chaos_implies_default_timeout(self):
        supervisor = CellSupervisor(chaos=ChaosConfig(rate=0.2))
        assert supervisor.cell_timeout == DEFAULT_CHAOS_TIMEOUT
        explicit = CellSupervisor(chaos=ChaosConfig(rate=0.2),
                                  cell_timeout=3.0)
        assert explicit.cell_timeout == 3.0


# -- sandboxing, retries, quarantine ---------------------------------------


class TestSandbox:
    def test_worker_exception_becomes_quarantine_hole(self, tmp_path):
        log_path = tmp_path / "grid.jsonl"
        grid = cells_for("GQS") + [
            CampaignCell("NoSuchTester", ENGINE, 0, 2.0, gate_scale=0.05)
        ]
        results = ParallelCampaignRunner(
            jobs=1, events_path=log_path, cell_retries=1, retry_backoff=0.0,
        ).run(grid)

        # The healthy cell's result is untouched by its neighbour's death.
        assert list(results) == [("GQS", ENGINE, 0)]
        reference = ParallelCampaignRunner(jobs=1).run(cells_for("GQS"))
        assert fingerprint(results) == fingerprint(reference)

        events = load_event_stream(log_path)
        failed = [e for e in events if e["event"] == "cell_failed"]
        assert [e["attempt"] for e in failed] == [1, 2]
        assert all(e["kind"] == "exception" for e in failed)
        assert all("ValueError" in e["error"] for e in failed)
        assert all(e["tester"] == "NoSuchTester" for e in failed)
        assert failed[0]["will_retry"] and not failed[1]["will_retry"]
        assert failed[0]["traceback_tail"]  # structured context captured

        retries = [e for e in events if e["event"] == "cell_retry"]
        assert len(retries) == 1 and retries[0]["next_attempt"] == 2

        (quarantined,) = (e for e in events
                          if e["event"] == "cell_quarantined")
        assert quarantined["attempts"] == 2

        (grid_end,) = (e for e in events if e["event"] == "grid_end")
        assert grid_end["completed"] == 1 and grid_end["quarantined"] == 1

    def test_quarantine_false_raises_after_final_failure(self, tmp_path):
        grid = [CampaignCell("NoSuchTester", ENGINE, 0, 2.0)]
        runner = ParallelCampaignRunner(
            jobs=1, events_path=tmp_path / "grid.jsonl", quarantine=False,
        )
        with pytest.raises(CellFailedError, match="NoSuchTester"):
            runner.run(grid)
        # The final attempt was still logged before the raise.
        events = load_event_stream(tmp_path / "grid.jsonl")
        assert "cell_failed" in kinds_of(events)

    def test_completion_order_checkpoint_survives_earlier_cell_failing(
        self, tmp_path
    ):
        # Grid order: the DOOMED cell first, the healthy cell second.  In
        # pool mode with retries the healthy cell finishes while the first
        # is still failing — its checkpoint must land anyway (the old
        # head-of-line imap would have lost it).
        log_path = tmp_path / "grid.jsonl"
        grid = [
            CampaignCell("NoSuchTester", ENGINE, 0, 2.0, gate_scale=0.05),
            *cells_for("GQS"),
        ]
        results = ParallelCampaignRunner(
            jobs=2, events_path=log_path, cell_retries=2, retry_backoff=0.0,
        ).run(grid)
        assert list(results) == [("GQS", ENGINE, 0)]
        events = load_event_stream(log_path)
        completes = [e for e in events if e["event"] == "cell_complete"]
        assert [e["tester"] for e in completes] == ["GQS"]


# -- watchdog and chaos injection ------------------------------------------


class TestWatchdogAndChaos:
    def test_hang_is_cut_by_watchdog_and_quarantined(self, tmp_path):
        log_path = tmp_path / "grid.jsonl"
        chaos = ScriptedChaos(rate=1.0, hang_seconds=60.0,
                              script=("hang",))
        results = ParallelCampaignRunner(
            jobs=1, events_path=log_path, chaos=chaos, cell_timeout=1.0,
        ).run(cells_for("GQS"))
        assert results == {}
        events = load_event_stream(log_path)
        (failed,) = (e for e in events if e["event"] == "cell_failed")
        assert failed["kind"] == "timeout"
        assert "watchdog" in failed["error"]
        assert "cell_quarantined" in kinds_of(events)

    def test_crashed_attempt_retries_to_byte_identical_result(
        self, tmp_path
    ):
        log_path = tmp_path / "grid.jsonl"
        chaos = ScriptedChaos(rate=1.0, script=("crash",))
        results = ParallelCampaignRunner(
            jobs=1, events_path=log_path, chaos=chaos, cell_timeout=30.0,
            cell_retries=1, retry_backoff=0.0,
        ).run(cells_for("GQS"))
        reference = ParallelCampaignRunner(jobs=1).run(cells_for("GQS"))
        assert fingerprint(results) == fingerprint(reference)
        events = load_event_stream(log_path)
        (failed,) = (e for e in events if e["event"] == "cell_failed")
        assert failed["kind"] == "crash" and failed["attempt"] == 1
        (complete,) = (e for e in events if e["event"] == "cell_complete")
        assert complete["attempts"] == 2

    def test_injected_error_is_sandboxed(self, tmp_path):
        log_path = tmp_path / "grid.jsonl"
        chaos = ScriptedChaos(rate=1.0, script=("error",))
        results = ParallelCampaignRunner(
            jobs=1, events_path=log_path, chaos=chaos, cell_timeout=30.0,
            cell_retries=1, retry_backoff=0.0,
        ).run(cells_for("GQS"))
        reference = ParallelCampaignRunner(jobs=1).run(cells_for("GQS"))
        assert fingerprint(results) == fingerprint(reference)
        (failed,) = (e for e in load_event_stream(log_path)
                     if e["event"] == "cell_failed")
        assert failed["kind"] == "exception"
        assert "chaos: injected worker error" in failed["error"]

    def test_chaos_grid_healthy_cells_match_fault_free_reference(self):
        grid = cells_for("GQS", "GQT", "GRev")
        reference = ParallelCampaignRunner(jobs=1).run(grid)
        chaos = ChaosConfig(rate=0.6, seed=7, hang_seconds=60.0)
        runs = [
            ParallelCampaignRunner(
                jobs=2, chaos=chaos, cell_timeout=2.0, cell_retries=2,
                retry_backoff=0.0,
            ).run(grid)
            for _ in range(2)
        ]
        # Chaos is deterministic: both runs complete the same cells...
        assert set(runs[0]) == set(runs[1])
        assert fingerprint(runs[0]) == fingerprint(runs[1])
        # ...and every completed cell is byte-identical to fault-free.
        ref_dicts = {k: campaign_to_dict(v) for k, v in reference.items()}
        for key, result in runs[0].items():
            assert campaign_to_dict(result) == ref_dicts[key]

    def test_truncated_checkpoints_rerun_on_resume(self, tmp_path):
        log_path = tmp_path / "chaos.jsonl"
        grid = cells_for("GQS", "GQT")
        reference = ParallelCampaignRunner(jobs=1).run(grid)
        chaos = ScriptedChaos(rate=1.0, script=(), truncate_all=True)
        torn = ParallelCampaignRunner(
            jobs=1, events_path=log_path, chaos=chaos, cell_timeout=30.0,
        ).run(grid)
        # The run itself is unaffected (in-memory events are intact)...
        assert fingerprint(torn) == fingerprint(reference)
        # ...but every on-disk checkpoint line was torn mid-write.
        events = load_event_stream(log_path)
        assert "cell_complete" not in kinds_of(events)
        assert sum(1 for e in events if e["event"] == "chaos") == 2
        # Resume (fault-free) re-runs the torn cells back to byte-identity.
        resumed = ParallelCampaignRunner(
            jobs=1, events_path=log_path,
        ).run(grid, resume_path=log_path)
        assert fingerprint(resumed) == fingerprint(reference)
        completes = [e for e in load_event_stream(log_path)
                     if e["event"] == "cell_complete"]
        assert len(completes) == 2


# -- pool lifecycle ---------------------------------------------------------


class TestPoolLifecycle:
    def test_jobs_exceeding_cells(self):
        grid = cells_for("GQS", "GQT")
        assert fingerprint(ParallelCampaignRunner(jobs=16).run(grid)) == \
            fingerprint(ParallelCampaignRunner(jobs=1).run(grid))

    def test_single_cell_grid(self):
        grid = cells_for("GQS")
        assert fingerprint(ParallelCampaignRunner(jobs=4).run(grid)) == \
            fingerprint(ParallelCampaignRunner(jobs=1).run(grid))

    def test_spawn_start_method_is_byte_identical(self, monkeypatch):
        grid = cells_for("GQS", "GQT")
        reference = ParallelCampaignRunner(jobs=1).run(grid)
        monkeypatch.setenv("GQS_START_METHOD", "spawn")
        spawned = ParallelCampaignRunner(jobs=2).run(grid)
        assert fingerprint(spawned) == fingerprint(reference)

    def test_supervisor_generator_close_reaps_slot_processes(self):
        runner = ParallelCampaignRunner(jobs=1)
        chaos = ScriptedChaos(rate=1.0, hang_seconds=60.0,
                              script=("hang", "hang", "hang"))
        supervisor = CellSupervisor(jobs=1, cell_timeout=1.0,
                                    cell_retries=2, retry_backoff=0.0,
                                    chaos=chaos)
        stream = supervisor.run([runner._task(cells_for("GQS")[0])])
        first = next(stream)  # one timed-out attempt (~1s)
        assert first.kind == "timeout"
        stream.close()  # consumer bails out mid-grid
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, "slot process leaked"
            time.sleep(0.05)

    def test_sigint_mid_grid_leaves_resumable_log(self, tmp_path):
        # A real mid-grid kill: SIGINT the grid process after its first
        # completion-order checkpoint, then resume and demand
        # byte-identity with an uninterrupted reference run.
        log_path = tmp_path / "interrupted.jsonl"
        grid = [
            CampaignCell("GQS", ENGINE, 0, 2.0, gate_scale=0.05),
            CampaignCell("GQT", ENGINE, 0, 8.0, gate_scale=0.05),
            CampaignCell("GRev", ENGINE, 0, 8.0, gate_scale=0.05),
        ]
        script = (
            "import sys\n"
            "from repro.runtime import CampaignCell, ParallelCampaignRunner\n"
            "cells = [\n"
            "    CampaignCell('GQS', 'falkordb', 0, 2.0, gate_scale=0.05),\n"
            "    CampaignCell('GQT', 'falkordb', 0, 8.0, gate_scale=0.05),\n"
            "    CampaignCell('GRev', 'falkordb', 0, 8.0, gate_scale=0.05),\n"
            "]\n"
            "ParallelCampaignRunner(jobs=2, events_path=sys.argv[1])"
            ".run(cells)\n"
        )
        env = dict(os.environ)
        src = str((os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))) + "/src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(log_path)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if (log_path.exists()
                        and "cell_complete" in log_path.read_text()):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("grid never checkpointed a cell")
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # The interrupted log is readable (write-through + torn-line
        # tolerance) and already holds at least one checkpoint.
        events = load_event_stream(log_path)
        checkpointed = [e for e in events if e["event"] == "cell_complete"]
        assert checkpointed

        reference = ParallelCampaignRunner(jobs=1).run(grid)
        resumed = ParallelCampaignRunner(
            jobs=1, events_path=tmp_path / "resumed.jsonl",
        ).run(grid, resume_path=log_path)
        assert fingerprint(resumed) == fingerprint(reference)
        # Only unfinished cells re-ran.
        resumed_events = load_event_stream(tmp_path / "resumed.jsonl")
        (grid_start,) = (e for e in resumed_events
                         if e["event"] == "grid_start")
        assert grid_start["resumed"] == len(checkpointed)
        assert grid_start["pending"] == len(grid) - len(checkpointed)


# -- CLI diagnostics --------------------------------------------------------


class TestMalformedBundleCli:
    def test_replay_reports_parse_position_and_exits_2(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "gqs-bundle/1", "truncated')
        assert main(["replay", str(bad)]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0  # one line, not a traceback
        assert "bad.json" in err and "line 1" in err and "char" in err

    def test_reduce_preflights_malformed_bundles(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        assert main(["reduce", str(bad)]) == 2
        err = capsys.readouterr().err.strip()
        assert "bad.json" in err and "malformed bundle JSON" in err

    def test_non_bundle_json_is_diagnosed(self, tmp_path, capsys):
        from repro.cli import main

        not_bundle = tmp_path / "list.json"
        not_bundle.write_text("[1, 2, 3]")
        assert main(["replay", str(not_bundle)]) == 2
        assert "not a flight-recorder bundle" in capsys.readouterr().err


# -- supervisor stats rendering --------------------------------------------


class TestSupervisorRendering:
    def test_stats_render_supervisor_section(self, tmp_path):
        from repro.obs import render_stats

        log_path = tmp_path / "grid.jsonl"
        grid = cells_for("GQS") + [
            CampaignCell("NoSuchTester", ENGINE, 0, 2.0, gate_scale=0.05)
        ]
        ParallelCampaignRunner(
            jobs=1, events_path=log_path, cell_retries=1, retry_backoff=0.0,
        ).run(grid)
        rendered = render_stats(load_event_stream(log_path))
        assert "== supervisor ==" in rendered
        assert "failed attempts (exception)" in rendered
        assert "cells quarantined" in rendered
