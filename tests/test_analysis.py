"""Tests for the query complexity analyzer (§5.4.2 metrics)."""


from repro.cypher.analysis import analyze, clause_histogram, clause_types_in
from repro.cypher.analysis import functions_in
from repro.cypher.parser import parse_query


class TestPatternCount:
    def test_single_pattern(self):
        assert analyze(parse_query("MATCH (n) RETURN n")).patterns == 1

    def test_comma_patterns_counted(self):
        metrics = analyze(parse_query("MATCH (a), (b)-[r]->(c) RETURN a"))
        assert metrics.patterns == 2

    def test_patterns_across_clauses(self):
        metrics = analyze(
            parse_query("MATCH (a) MATCH (b), (c) OPTIONAL MATCH (d) RETURN a")
        )
        assert metrics.patterns == 4

    def test_no_patterns(self):
        assert analyze(parse_query("RETURN 1 AS x")).patterns == 0


class TestExpressionDepth:
    def test_literal_depth(self):
        assert analyze(parse_query("RETURN 1 AS x")).expression_depth == 1

    def test_nested_depth(self):
        metrics = analyze(parse_query("RETURN abs(1 + 2 * 3) AS x"))
        assert metrics.expression_depth == 4

    def test_where_counts(self):
        shallow = analyze(parse_query("MATCH (n) WHERE n.x = 1 RETURN n"))
        deep = analyze(
            parse_query("MATCH (n) WHERE abs(n.x + abs(n.y)) = 1 RETURN n")
        )
        assert deep.expression_depth > shallow.expression_depth


class TestClauseCount:
    def test_counts_main_clauses(self):
        metrics = analyze(
            parse_query("MATCH (n) WITH n UNWIND [1] AS x RETURN x")
        )
        assert metrics.clauses == 4

    def test_union_counts_both_sides(self):
        metrics = analyze(parse_query("RETURN 1 AS x UNION RETURN 2 AS x"))
        assert metrics.clauses == 2


class TestDependencies:
    def test_no_cross_clause_refs(self):
        assert analyze(parse_query("MATCH (n) RETURN 1 AS x")).dependencies == 0

    def test_return_reference_counts(self):
        assert analyze(parse_query("MATCH (n) RETURN n")).dependencies == 1

    def test_reference_in_later_match(self):
        metrics = analyze(parse_query("MATCH (n) MATCH (n)-[r]->(m) RETURN m"))
        # n reused in clause 2 (+1), m used in RETURN (+1).
        assert metrics.dependencies == 2

    def test_figure1_has_many_dependencies(self):
        text = (
            "MATCH (n2)<-[r1]->(n0), (n3)-[r2]->(n4)-[r3]->(n5) WHERE r1.id=13 "
            "UNWIND [n5.k2 <> r3.id, false] as a1 "
            "WITH DISTINCT n2, r3, n3, n4, n5, endNode(r1) as a2, n0 "
            "MATCH (n2)<-[r4:t10]->(n0), (n3)-[r5]->(n4)-[r6]->(n5) "
            "WHERE ((r6.k85)+(n2.k11)) ENDS WITH 'q' "
            "RETURN n2.id as a3, r6.id as a4"
        )
        metrics = analyze(parse_query(text))
        assert metrics.dependencies >= 15

    def test_within_clause_refs_not_counted(self):
        # Both uses of n are in the same MATCH clause.
        metrics = analyze(parse_query("MATCH (n)-[r]->(n) RETURN 1 AS x"))
        assert metrics.dependencies == 0


class TestClauseTypes:
    def test_subclauses_reported(self):
        names = clause_types_in(
            parse_query(
                "MATCH (n) WHERE n.x = 1 WITH DISTINCT n.x AS v ORDER BY v "
                "SKIP 1 LIMIT 2 WHERE v > 0 RETURN v"
            )
        )
        assert names.count("WHERE") == 2
        assert "DISTINCT" in names
        assert "ORDER BY" in names
        assert "SKIP" in names and "LIMIT" in names

    def test_optional_match_distinguished(self):
        names = clause_types_in(parse_query("OPTIONAL MATCH (n) RETURN n"))
        assert "OPTIONAL MATCH" in names
        assert "MATCH" not in names

    def test_union_reported(self):
        names = clause_types_in(
            parse_query("RETURN 1 AS x UNION RETURN 2 AS x")
        )
        assert "UNION" in names

    def test_histogram_aggregates(self):
        queries = [
            parse_query("MATCH (n) RETURN n"),
            parse_query("MATCH (n) MATCH (m) RETURN n"),
        ]
        histogram = clause_histogram(queries)
        assert histogram["MATCH"] == 3
        assert histogram["RETURN"] == 2


class TestFunctionsIn:
    def test_collects_nested_functions(self):
        names = functions_in(
            parse_query("RETURN abs(toFloat(left('ab', 1))) AS x")
        )
        assert names == ["abs", "tofloat", "left"]

    def test_functions_in_where(self):
        names = functions_in(
            parse_query("MATCH (n) WHERE size(n.x) = 1 RETURN n")
        )
        assert "size" in names
