"""Tests for the Cypher-to-Gremlin translator (§7 'Beyond Cypher')."""

import random

import pytest

from repro.core import QuerySynthesizer, SynthesizerConfig
from repro.cypher.gremlin import (
    UnsupportedForGremlin,
    translate_expression,
    translate_query,
)
from repro.cypher.parser import parse_expression, parse_query
from repro.graph import GraphGenerator


def tq(text):
    return translate_query(parse_query(text))


class TestPatterns:
    def test_simple_match(self):
        out = tq("MATCH (n:USER) RETURN n.name AS name")
        assert out.startswith("g.V().hasLabel('USER').as('n')")
        assert ".project('name')" in out

    def test_directed_edge(self):
        out = tq("MATCH (a)-[r:LIKE]->(b) RETURN a.x AS x")
        assert ".outE('LIKE').as('r').inV()" in out

    def test_incoming_edge(self):
        out = tq("MATCH (a)<-[r:LIKE]-(b) RETURN a.x AS x")
        assert ".inE('LIKE').as('r').outV()" in out

    def test_undirected_edge(self):
        out = tq("MATCH (a)-[r]-(b) RETURN a.x AS x")
        assert ".bothE().as('r').otherV()" in out

    def test_multiple_patterns_become_match_steps(self):
        out = tq("MATCH (a:X), (b:Y) RETURN a.v AS v")
        assert ".match(__." in out

    def test_inline_properties(self):
        out = tq("MATCH (a {id: 3}) RETURN a.x AS x")
        assert ".has('id', 3)" in out


class TestExpressions:
    def test_comparators(self):
        out = translate_expression(parse_expression("n.x >= 5"))
        assert "P.gte(5)" in out

    def test_text_predicates(self):
        out = translate_expression(parse_expression("n.s STARTS WITH 'ab'"))
        assert "TextP.startingWith('ab')" in out

    def test_logic(self):
        out = translate_expression(parse_expression("n.x = 1 AND n.y = 2"))
        assert out.startswith("and(")

    def test_functions_prefixed(self):
        out = translate_expression(parse_expression("toUpper(n.s)"))
        assert out.startswith("cfog.toUpper(")

    def test_where_is_attached(self):
        out = tq("MATCH (n) WHERE n.x = 1 RETURN n.x AS x")
        assert ".where(" in out


class TestRefinements:
    def test_order_and_limit(self):
        out = tq("MATCH (n) RETURN n.x AS x ORDER BY n.x DESC LIMIT 3")
        assert ".order().by(" in out and "desc" in out
        assert ".limit(3)" in out

    def test_distinct(self):
        out = tq("MATCH (n) RETURN DISTINCT n.x AS x")
        assert ".dedup()" in out


class TestDisabledFeatures:
    """Exactly the features the paper disabled for the JanusGraph run."""

    @pytest.mark.parametrize("text,fragment", [
        ("UNWIND [1,2] AS x RETURN x", "UNWIND"),
        ("MATCH (n) RETURN count(*) AS c", "aggregation"),
        ("MATCH (n) RETURN collect(n.x) AS xs", "aggregation"),
        ("RETURN 1 AS x UNION RETURN 2 AS x", "UNION"),
        ("CALL db.labels() YIELD label RETURN label", "CALL"),
        ("OPTIONAL MATCH (n) RETURN n.x AS x", "OPTIONAL MATCH"),
    ])
    def test_unsupported(self, text, fragment):
        with pytest.raises(UnsupportedForGremlin) as excinfo:
            tq(text)
        assert fragment.split()[0] in str(excinfo.value)


class TestSynthesizedQueries:
    def test_translatable_fraction(self):
        """With UNWIND/CALL/UNION/aggregates disabled in the synthesizer
        config, most GQS queries translate (the §7 setup)."""
        config = SynthesizerConfig(
            extra_lists=0,
            union_probability=0.0,
            call_probability=0.0,
            count_star_alias_probability=0.0,
            optional_match_probability=0.0,
            use_list_comprehensions=False,
        )
        translated = failed = 0
        for seed in range(40):
            schema, graph = GraphGenerator(seed=seed).generate_with_schema()
            synthesizer = QuerySynthesizer(
                graph, rng=random.Random(seed), config=config
            )
            result = synthesizer.synthesize()
            try:
                out = translate_query(result.query)
                assert out.startswith("g.V()")
                translated += 1
            except UnsupportedForGremlin:
                failed += 1
        assert translated > failed
