"""Property tests: the evaluator agrees with the value-model primitives."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import ast
from repro.engine.errors import CypherError
from repro.engine.evaluator import Evaluator
from repro.graph import values as V
from repro.graph.model import PropertyGraph


EVALUATOR = Evaluator(PropertyGraph())

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=5),
    st.lists(st.integers(min_value=-9, max_value=9), max_size=3),
)


def lit(value):
    if isinstance(value, list):
        return ast.ListLiteral(tuple(lit(v) for v in value))
    return ast.Literal(value)


class TestOperatorsMatchValueModel:
    @given(scalars, scalars)
    @settings(max_examples=300, deadline=None)
    def test_equality_operator(self, a, b):
        result = EVALUATOR.evaluate(ast.Binary("=", lit(a), lit(b)), {})
        assert result == V.ternary_equals(a, b)

    @given(scalars, scalars)
    @settings(max_examples=300, deadline=None)
    def test_less_than_operator(self, a, b):
        result = EVALUATOR.evaluate(ast.Binary("<", lit(a), lit(b)), {})
        verdict = V.ternary_compare(a, b)
        expected = None if verdict is None else verdict < 0
        assert result == expected

    @given(st.sampled_from([True, False, None]),
           st.sampled_from([True, False, None]))
    def test_connectives(self, a, b):
        for op, fn in [("AND", V.ternary_and), ("OR", V.ternary_or),
                       ("XOR", V.ternary_xor)]:
            result = EVALUATOR.evaluate(ast.Binary(op, lit(a), lit(b)), {})
            assert result == fn(a, b)

    @given(scalars, scalars)
    @settings(max_examples=200, deadline=None)
    def test_inequality_is_not_equality(self, a, b):
        eq = EVALUATOR.evaluate(ast.Binary("=", lit(a), lit(b)), {})
        neq = EVALUATOR.evaluate(ast.Binary("<>", lit(a), lit(b)), {})
        assert neq == V.ternary_not(eq)


class TestArithmeticProperties:
    small_ints = st.integers(min_value=-10**6, max_value=10**6)

    @given(small_ints, small_ints)
    def test_addition_commutative(self, a, b):
        left = EVALUATOR.evaluate(ast.Binary("+", lit(a), lit(b)), {})
        right = EVALUATOR.evaluate(ast.Binary("+", lit(b), lit(a)), {})
        assert left == right == a + b

    @given(small_ints, small_ints.filter(lambda x: x != 0))
    def test_division_modulo_identity(self, a, b):
        """Cypher integer semantics: a == (a / b) * b + (a % b)."""
        quotient = EVALUATOR.evaluate(ast.Binary("/", lit(a), lit(b)), {})
        remainder = EVALUATOR.evaluate(ast.Binary("%", lit(a), lit(b)), {})
        assert quotient * b + remainder == a

    @given(small_ints, small_ints.filter(lambda x: x != 0))
    def test_modulo_sign_follows_dividend(self, a, b):
        remainder = EVALUATOR.evaluate(ast.Binary("%", lit(a), lit(b)), {})
        if remainder != 0:
            assert (remainder > 0) == (a > 0)


class TestMembershipAgainstModel:
    @given(scalars, st.lists(scalars, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_in_operator_definition(self, needle, haystack):
        result = EVALUATOR.evaluate(
            ast.Binary("IN", lit(needle), lit(haystack)), {}
        )
        # Reference definition: true if any element definitely equals, null
        # if undecided by nulls, false otherwise (empty list is false).
        verdicts = [V.ternary_equals(needle, item) for item in haystack]
        if True in verdicts:
            expected = True
        elif None in verdicts or (needle is None and haystack):
            expected = None
        else:
            expected = False
        assert result == expected


class TestErrorDiscipline:
    @given(scalars, scalars, st.sampled_from(["+", "-", "*", "/", "%", "^"]))
    @settings(max_examples=300, deadline=None)
    def test_arithmetic_total_or_cyphererror(self, a, b, op):
        try:
            EVALUATOR.evaluate(ast.Binary(op, lit(a), lit(b)), {})
        except CypherError:
            pass  # type errors and division by zero are legitimate
