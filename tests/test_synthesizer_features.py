"""Feature-coverage tests: the synthesizer exercises the Cypher surface.

§5.3 of the paper reports that GQS-generated queries involve every data
retrieval clause and 32 functions.  These tests verify the generator's
coverage over a modest corpus — if a feature silently stops being emitted,
the corresponding fault classes become unreachable and Table 3 degrades.
"""

import random
from collections import Counter

import pytest

from repro.core import QuerySynthesizer
from repro.cypher.analysis import clause_types_in, functions_in
from repro.cypher.printer import print_query
from repro.gdb.faults import extract_features
from repro.graph import GraphGenerator


@pytest.fixture(scope="module")
def corpus():
    queries = []
    for seed in range(120):
        schema, graph = GraphGenerator(seed=seed).generate_with_schema()
        synthesizer = QuerySynthesizer(graph, rng=random.Random(seed))
        queries.append(synthesizer.synthesize().query)
    return queries


class TestClauseCoverage:
    def test_all_retrieval_clauses_emitted(self, corpus):
        counter = Counter()
        for query in corpus:
            counter.update(set(clause_types_in(query)))
        for clause in ("MATCH", "OPTIONAL MATCH", "UNWIND", "WITH", "RETURN",
                       "WHERE", "ORDER BY", "LIMIT", "DISTINCT", "UNION",
                       "CALL"):
            assert counter[clause] > 0, clause

    def test_majority_use_canonical_skeleton(self, corpus):
        skeleton = 0
        for query in corpus:
            names = set(clause_types_in(query))
            if {"MATCH", "WHERE", "RETURN"} <= names:
                skeleton += 1
        assert skeleton / len(corpus) > 0.8


class TestFunctionCoverage:
    def test_at_least_30_functions_used(self, corpus):
        """The paper: 32 functions appear in the bug-triggering queries;
        a 120-query corpus already covers ≥30 (300 queries reach 34)."""
        used = set()
        for query in corpus:
            used.update(functions_in(query))
        assert len(used) >= 30, sorted(used)

    def test_aggregates_appear(self, corpus):
        found_aggregate = False
        for query in corpus:
            features = extract_features(query, print_query(query))
            if features.aggregate_count:
                found_aggregate = True
                break
        assert found_aggregate


class TestOperatorCoverage:
    def test_operator_families(self, corpus):
        string_preds = modulo = division = comprehension = 0
        for query in corpus:
            text = print_query(query)
            features = extract_features(query, text)
            string_preds += features.string_predicates
            modulo += features.modulo_ops
            division += features.division_ops
            comprehension += " IN " in text and "|" in text
        assert string_preds > 0
        assert modulo > 0
        assert division > 0

    def test_undirected_and_multilabel_patterns(self, corpus):
        undirected = multilabel = 0
        for query in corpus:
            features = extract_features(query, print_query(query))
            undirected += features.undirected_rels
            multilabel += features.multi_label_nodes
        assert undirected > 0
        assert multilabel > 0

    def test_replace_with_empty_reachable(self):
        """Figure 9's trigger must be reachable (memgraph-O1)."""
        found = False
        for seed in range(400):
            schema, graph = GraphGenerator(seed=seed).generate_with_schema()
            synthesizer = QuerySynthesizer(graph, rng=random.Random(seed))
            result = synthesizer.synthesize()
            features = extract_features(result.query, print_query(result.query))
            if features.replace_with_empty:
                found = True
                break
        assert found
