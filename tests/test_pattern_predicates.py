"""Tests for pattern predicates in WHERE (`WHERE (a)-[:T]->(b)`)."""

import pytest

from repro.cypher import ast
from repro.cypher.parser import parse_expression, parse_query
from repro.cypher.printer import print_query
from repro.engine.executor import Executor
from repro.graph.model import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    g.add_node(["A"], {"id": 0})
    g.add_node(["B"], {"id": 1})
    g.add_node(["A"], {"id": 2})   # no outgoing edges
    g.add_relationship(0, 1, "T", {"id": 0})
    g.add_relationship(1, 0, "U", {"id": 1})
    return g


def run(graph, text):
    return Executor(graph).execute(parse_query(text))


class TestParsing:
    def test_recognized_in_where(self):
        query = parse_query("MATCH (n) WHERE (n)-[:T]->() RETURN n")
        where = query.clauses[0].where
        assert isinstance(where, ast.PatternPredicate)

    def test_parenthesized_expression_not_confused(self):
        expr = parse_expression("(1 + 2)")
        assert expr == ast.Binary("+", ast.Literal(1), ast.Literal(2))

    def test_labels_predicate_not_confused(self):
        expr = parse_expression("(n:L1)")
        assert isinstance(expr, ast.LabelsPredicate)

    def test_composable_with_logic(self):
        query = parse_query(
            "MATCH (n) WHERE (n)-[:T]->() AND n.id >= 0 RETURN n"
        )
        where = query.clauses[0].where
        assert isinstance(where, ast.Binary) and where.op == "AND"
        assert isinstance(where.left, ast.PatternPredicate)

    def test_round_trip(self):
        text = "MATCH (n) WHERE (n)-[:T]->(m:B) RETURN n.id AS v"
        printed = print_query(parse_query(text))
        assert print_query(parse_query(printed)) == printed

    def test_variables_reported(self):
        expr = parse_expression("(a)-[r:T]->(b)")
        assert set(expr.variables()) == {"a", "r", "b"}


class TestEvaluation:
    def test_filters_to_matching_nodes(self, graph):
        rows = run(graph, "MATCH (n:A) WHERE (n)-[:T]->() RETURN n.id AS v")
        assert rows.rows == [(0,)]

    def test_negated(self, graph):
        rows = run(graph, "MATCH (n:A) WHERE NOT (n)-[:T]->() RETURN n.id AS v")
        assert rows.rows == [(2,)]

    def test_direction_respected(self, graph):
        rows = run(graph, "MATCH (n) WHERE (n)<-[:T]-() RETURN n.id AS v")
        assert rows.rows == [(1,)]

    def test_two_bound_endpoints(self, graph):
        rows = run(
            graph,
            "MATCH (a:A), (b:B) WHERE (a)-[:T]->(b) RETURN a.id AS a, b.id AS b",
        )
        assert rows.rows == [(0, 1)]

    def test_label_constraint_inside_pattern(self, graph):
        rows = run(graph, "MATCH (n) WHERE (n)-[]->(:A) RETURN n.id AS v")
        assert rows.rows == [(1,)]

    def test_null_binding_is_false(self, graph):
        rows = run(
            graph,
            "OPTIONAL MATCH (n:GHOST) WITH n WHERE (n)-[:T]->() RETURN n",
        )
        assert len(rows) == 0

    def test_works_in_with_where(self, graph):
        rows = run(
            graph,
            "MATCH (n:A) WITH n WHERE (n)-[:T]->() RETURN n.id AS v",
        )
        assert rows.rows == [(0,)]
