"""Behavioural tests of campaign dynamics the paper's §5.4.4 relies on."""


from repro.baselines import GDBMeterTester
from repro.core.runner import GQSTester
from repro.gdb import create_engine, faults_for


class TestRestartPolicy:
    def test_gqs_restarts_per_graph(self):
        """GQS's session counter never accumulates across graphs."""
        engine = create_engine("falkordb", faults_enabled=False)
        GQSTester().run(engine, budget_seconds=20.0, seed=1)
        # Each graph is loaded with restart=True, so the counter only holds
        # the queries since the *last* graph.
        assert engine.queries_since_restart < engine.total_queries

    def test_baselines_keep_one_session(self):
        engine = create_engine("falkordb", faults_enabled=False)
        GDBMeterTester().run(engine, budget_seconds=20.0, seed=1)
        # Continuous session: every executed query is still counted.
        assert engine.queries_since_restart == engine.total_queries

    def test_session_faults_unreachable_for_gqs(self):
        """§5.4.4: GQS cannot find the accumulation crashes."""
        engine = create_engine("falkordb")
        result = GQSTester().run(engine, budget_seconds=60.0, seed=2)
        session_ids = {
            fault.fault_id
            for fault in faults_for("falkordb")
            if fault.session_queries_required
        }
        assert not (set(result.detected_faults) & session_ids)


class TestGateScaleSemantics:
    def test_scale_shortens_time_to_first_bug(self):
        slow = create_engine("memgraph", gate_scale=1.0)
        fast = create_engine("memgraph", gate_scale=0.01)
        slow_result = GQSTester().run(slow, budget_seconds=30.0, seed=3)
        fast_result = GQSTester().run(fast, budget_seconds=30.0, seed=3)
        assert len(fast_result.detected_faults) >= len(slow_result.detected_faults)

    def test_open_gates_fire_on_matching_features_only(self):
        """gate_scale=0 opens every gate but never invents feature matches."""
        engine = create_engine("neo4j", gate_scale=0.0)
        graph_engine = create_engine("neo4j", gate_scale=0.0)
        from repro.graph.generator import GraphGenerator

        graph = GraphGenerator(seed=4).generate()
        engine.load_graph(graph, None)
        # A trivially simple query matches no Neo4j trigger.
        result = engine.execute("MATCH (n) RETURN n.id AS v")
        assert engine.last_fired_fault is None


class TestFalsePositiveAccounting:
    def test_fp_rate_of_gdsmith_is_high(self):
        """§5.4.3: ~98% of GDsmith's reports are false alarms."""
        from repro.baselines import GDsmithTester

        target = create_engine("neo4j", faults_enabled=False)
        others = [
            create_engine("memgraph", faults_enabled=False),
            create_engine("falkordb", faults_enabled=False),
        ]
        tester = GDsmithTester(others)
        result = tester.run(target, budget_seconds=100.0, seed=5)
        if result.reports:
            fp_rate = result.false_positive_count / len(result.reports)
            assert fp_rate == 1.0  # engines are clean: every report is an FP

    def test_gqs_never_reports_on_clean_engines(self):
        for name in ("neo4j", "memgraph", "kuzu", "falkordb"):
            engine = create_engine(name, faults_enabled=False)
            result = GQSTester().run(engine, budget_seconds=15.0, seed=6)
            assert result.reports == [], name
