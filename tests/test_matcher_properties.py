"""Property tests: every match the matcher emits satisfies its pattern."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import ast
from repro.engine.matcher import Matcher
from repro.graph.generator import GraphGenerator
from repro.graph.model import Node, Relationship


def random_patterns(graph, rng, n_patterns=2, max_hops=2):
    """Random label/direction-constrained patterns over real graph vocab."""
    labels = graph.labels() or [""]
    types = graph.relationship_types() or [""]
    patterns = []
    counter = 0
    for _ in range(rng.randint(1, n_patterns)):
        length = rng.randint(0, max_hops)
        nodes = []
        rels = []
        for i in range(length + 1):
            node_labels = ()
            if rng.random() < 0.4 and labels[0]:
                node_labels = (rng.choice(labels),)
            nodes.append(ast.NodePattern(f"n{counter}", node_labels))
            counter += 1
        for _ in range(length):
            rel_types = ()
            if rng.random() < 0.4 and types[0]:
                rel_types = (rng.choice(types),)
            direction = rng.choice([ast.OUT, ast.IN, ast.BOTH])
            rels.append(ast.RelationshipPattern(f"r{counter}", rel_types, direction))
            counter += 1
        patterns.append(ast.PathPattern(tuple(nodes), tuple(rels)))
    return tuple(patterns)


def check_assignment(graph, patterns, match, enforce_uniqueness):
    """Verify a single match against every structural constraint."""
    used = []
    for pattern in patterns:
        for index, rel_pattern in enumerate(pattern.relationships):
            rel = match[rel_pattern.variable]
            assert isinstance(rel, Relationship)
            used.append(rel.id)
            left = match[pattern.nodes[index].variable]
            right = match[pattern.nodes[index + 1].variable]
            if rel_pattern.direction == ast.OUT:
                assert rel.start == left.id and rel.end == right.id
            elif rel_pattern.direction == ast.IN:
                assert rel.end == left.id and rel.start == right.id
            else:
                assert {rel.start, rel.end} == {left.id, right.id} or (
                    rel.start == rel.end == left.id
                )
            if rel_pattern.types:
                assert rel.type in rel_pattern.types
        for node_pattern in pattern.nodes:
            node = match[node_pattern.variable]
            assert isinstance(node, Node)
            assert set(node_pattern.labels) <= node.labels
    if enforce_uniqueness:
        assert len(used) == len(set(used))


@given(st.integers(min_value=0, max_value=3000))
@settings(max_examples=60, deadline=None)
def test_matches_satisfy_all_constraints(seed):
    rng = random.Random(seed)
    graph = GraphGenerator(seed=seed).generate()
    patterns = random_patterns(graph, rng)
    matcher = Matcher(graph)
    count = 0
    for match in matcher.match(patterns, {}):
        check_assignment(graph, patterns, match, enforce_uniqueness=True)
        count += 1
        if count > 200:
            break


@given(st.integers(min_value=0, max_value=3000))
@settings(max_examples=40, deadline=None)
def test_loose_matching_is_superset(seed):
    """Disabling uniqueness can only add matches, never remove them."""
    rng = random.Random(seed)
    graph = GraphGenerator(seed=seed).generate()
    patterns = random_patterns(graph, rng, n_patterns=1, max_hops=2)

    def keys(matcher, limit):
        # Truncating BOTH enumerations at the same index would be wrong:
        # the first N loose matches need not contain all of the first N
        # strict matches (loose interleaves extra assignments), so the
        # loose side gets a much larger budget below.
        out = set()
        for index, match in enumerate(matcher.match(patterns, {})):
            out.add(tuple(sorted(
                (name, type(v).__name__, v.id) for name, v in match.items()
            )))
            if index >= limit:
                break
        return out

    strict = keys(Matcher(graph, enforce_rel_uniqueness=True), 300)
    loose = keys(Matcher(graph, enforce_rel_uniqueness=False), 20000)
    assert strict <= loose


@given(st.integers(min_value=0, max_value=3000))
@settings(max_examples=40, deadline=None)
def test_bound_row_restricts_matches(seed):
    """Pre-binding a variable selects exactly the matches with that value."""
    rng = random.Random(seed)
    graph = GraphGenerator(seed=seed).generate()
    patterns = random_patterns(graph, rng, n_patterns=1, max_hops=1)
    matcher = Matcher(graph)
    all_matches = list(matcher.match(patterns, {}))
    if not all_matches:
        return
    target = all_matches[0]
    first_var = next(iter(target))
    bound = list(matcher.match(patterns, {first_var: target[first_var]}))
    assert bound  # the witnessing match survives
    for match in bound:
        assert match[first_var].id == target[first_var].id
