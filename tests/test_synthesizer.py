"""End-to-end tests for the GQS query synthesizer.

The central property (the paper's soundness requirement): executing the
synthesized query on a *correct* engine yields exactly the established
expected result set.  Any failure here would mean GQS reports false
positives — the flaw the approach exists to eliminate.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuerySynthesizer, SynthesizerConfig, check_result
from repro.core.ground_truth import select_ground_truth
from repro.cypher import ast
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine import Executor
from repro.graph.generator import GraphGenerator


def synthesize(seed, config=None):
    generator = GraphGenerator(seed=seed)
    schema, graph = generator.generate_with_schema()
    synthesizer = QuerySynthesizer(graph, rng=random.Random(seed), config=config)
    return graph, synthesizer.synthesize()


class TestSoundness:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=120, deadline=None)
    def test_query_reproduces_ground_truth(self, seed):
        graph, result = synthesize(seed)
        actual = Executor(graph.copy()).execute(result.query)
        verdict = check_result(result.expected, actual)
        assert verdict.passed, verdict.reason

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_query_text_round_trips(self, seed):
        """The printed query parses back and still produces the same result."""
        graph, result = synthesize(seed)
        reparsed = parse_query(print_query(result.query))
        actual = Executor(graph.copy()).execute(reparsed)
        assert check_result(result.expected, actual).passed

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_kuzu_dialect_soundness(self, seed):
        """With uniqueness predicates, results also hold on engines that do
        not enforce relationship uniqueness (the Kùzu/FalkorDB dialect)."""
        generator = GraphGenerator(seed=seed)
        schema, graph = generator.generate_with_schema()
        config = SynthesizerConfig(
            needs_uniqueness_predicates=True, supports_call_procedures=False
        )
        synthesizer = QuerySynthesizer(graph, rng=random.Random(seed), config=config)
        result = synthesizer.synthesize()
        loose = Executor(graph.copy(), enforce_rel_uniqueness=False)
        actual = loose.execute(result.query)
        assert check_result(result.expected, actual).passed

    def test_expected_columns_match_ground_truth(self):
        graph, result = synthesize(17)
        assert result.expected.columns == result.ground_truth.columns()

    def test_expected_rows_are_ground_truth_copies(self):
        graph, result = synthesize(23)
        for row in result.expected.rows:
            assert row == result.ground_truth.row()


class TestReproducibility:
    def test_same_seed_same_query(self):
        _g1, r1 = synthesize(99)
        _g2, r2 = synthesize(99)
        assert print_query(r1.query) == print_query(r2.query)

    def test_different_seeds_differ(self):
        _g1, r1 = synthesize(1)
        _g2, r2 = synthesize(2)
        assert print_query(r1.query) != print_query(r2.query)


class TestStructure:
    def test_step_counts_recorded(self):
        for seed in range(10):
            _graph, result = synthesize(seed)
            assert result.n_steps >= 2  # at least MATCH + RETURN
            assert result.scheduled_steps >= 1

    def test_last_clause_is_return(self):
        for seed in range(20):
            _graph, result = synthesize(seed)
            query = result.query
            while isinstance(query, ast.UnionQuery):
                query = query.right
            assert isinstance(query.clauses[-1], ast.Return)

    def test_first_clause_introduces_data(self):
        for seed in range(20):
            _graph, result = synthesize(seed)
            query = result.query
            while isinstance(query, ast.UnionQuery):
                query = query.left
            first = query.clauses[0]
            assert isinstance(first, (ast.Match, ast.Unwind, ast.Call))

    def test_reusing_ground_truth_changes_query_not_columns(self):
        generator = GraphGenerator(seed=77)
        schema, graph = generator.generate_with_schema()
        rng = random.Random(77)
        synthesizer = QuerySynthesizer(graph, rng=rng)
        gt = select_ground_truth(graph, rng)
        r1 = synthesizer.synthesize(gt)
        r2 = synthesizer.synthesize(gt)
        assert r1.expected.columns == r2.expected.columns
        assert print_query(r1.query) != print_query(r2.query)
        # Both remain sound.
        for result in (r1, r2):
            actual = Executor(graph.copy()).execute(result.query)
            assert check_result(result.expected, actual).passed


class TestUnionSynthesis:
    def test_union_queries_are_sound(self):
        config = SynthesizerConfig(union_probability=1.0)
        found_union = False
        for seed in range(12):
            generator = GraphGenerator(seed=seed)
            schema, graph = generator.generate_with_schema()
            synthesizer = QuerySynthesizer(
                graph, rng=random.Random(seed), config=config
            )
            result = synthesizer.synthesize()
            assert isinstance(result.query, ast.UnionQuery)
            found_union = True
            actual = Executor(graph.copy()).execute(result.query)
            assert check_result(result.expected, actual).passed
        assert found_union


class TestMultiplicity:
    def test_plain_truncation_leaves_copies(self):
        """With plain truncation forced, some queries return several
        identical rows (the Figure 7 situation: '6 rows of {...}')."""
        config = SynthesizerConfig(
            plain_truncation_probability=1.0,
            distinct_probability=0.0,
            limit_probability=0.0,
            union_probability=0.0,
        )
        saw_multiplicity = False
        for seed in range(40):
            generator = GraphGenerator(seed=seed)
            schema, graph = generator.generate_with_schema()
            synthesizer = QuerySynthesizer(
                graph, rng=random.Random(seed), config=config
            )
            result = synthesizer.synthesize()
            actual = Executor(graph.copy()).execute(result.query)
            assert check_result(result.expected, actual).passed
            if len(result.expected) > 1:
                saw_multiplicity = True
        assert saw_multiplicity
