"""Fast CLI coverage for the figure/compare paths (tiny budgets)."""


from repro.cli import main


class TestCompareCommand:
    def test_compare_runs_all_tools(self, capsys):
        assert main(["compare", "--engine", "falkordb", "--minutes", "0.2"]) == 0
        out = capsys.readouterr().out
        for tool in ("GQS", "GDsmith", "GDBMeter", "Gamera", "GQT", "GRev"):
            assert tool in out

    def test_compare_marks_unsupported(self, capsys):
        assert main(["compare", "--engine", "kuzu", "--minutes", "0.1"]) == 0
        out = capsys.readouterr().out
        # GDsmith and GRev don't support Kùzu.
        lines = [line for line in out.splitlines() if "GDsmith" in line]
        assert lines and "-" in lines[0]


class TestSynthesizeDeterminism:
    def test_same_seed_same_output(self, capsys):
        main(["synthesize", "--seed", "11"])
        first = capsys.readouterr().out
        main(["synthesize", "--seed", "11"])
        second = capsys.readouterr().out
        assert first == second

    def test_dialect_affects_query(self, capsys):
        main(["synthesize", "--seed", "11", "--engine", "neo4j"])
        neo = capsys.readouterr().out
        main(["synthesize", "--seed", "11", "--engine", "kuzu"])
        kuzu = capsys.readouterr().out
        assert neo != kuzu  # uniqueness predicates / CALL support differ
