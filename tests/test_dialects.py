"""Tests for the dialect descriptions and the GQS dialect handling (§4)."""

import random

import pytest

from repro.gdb.dialects import DIALECTS, FALKORDB, KUZU, MEMGRAPH, NEO4J


class TestDialectMetadata:
    def test_table2_facts(self):
        """The Table 2 constants the paper reports."""
        assert NEO4J.github_stars == "13.2K"
        assert NEO4J.initial_release == 2007
        assert NEO4J.loc == "1.4M"
        assert MEMGRAPH.tested_versions == ("2.13", "2.14.1", "2.15", "2.17")
        assert KUZU.loc == "11.9M"
        assert FALKORDB.tested_versions == ("4.2.0",)

    def test_uniqueness_deviation(self):
        """Kùzu and FalkorDB deviate from relationship uniqueness (§4)."""
        assert NEO4J.enforces_rel_uniqueness
        assert MEMGRAPH.enforces_rel_uniqueness
        assert not KUZU.enforces_rel_uniqueness
        assert not FALKORDB.enforces_rel_uniqueness

    def test_procedure_support(self):
        """db.labels() exists in Neo4j/FalkorDB but not Kùzu/Memgraph (§4)."""
        assert NEO4J.supports_call_procedures
        assert FALKORDB.supports_call_procedures
        assert not KUZU.supports_call_procedures
        assert not MEMGRAPH.supports_call_procedures

    def test_schema_requirement(self):
        assert KUZU.requires_schema
        assert not NEO4J.requires_schema

    def test_registry(self):
        assert set(DIALECTS) == {"neo4j", "memgraph", "kuzu", "falkordb"}


class TestCostModel:
    def test_monotone_in_steps(self):
        for dialect in DIALECTS.values():
            costs = [dialect.cost_of_steps(s) for s in range(1, 12)]
            assert costs == sorted(costs)

    def test_six_point_six_ratio(self):
        """§5.3: nine-step queries are 6.6x slower than three-step ones."""
        for dialect in DIALECTS.values():
            ratio = dialect.cost_of_steps(9) / dialect.cost_of_steps(3)
            assert ratio == pytest.approx(6.6)

    def test_absolute_throughput_anchors(self):
        """§5.3: Memgraph ~6 q/s at 9 steps, Neo4j ~3 q/s (on-disk I/O)."""
        assert 1.0 / MEMGRAPH.cost_of_steps(9) == pytest.approx(6.0)
        assert 1.0 / NEO4J.cost_of_steps(9) == pytest.approx(3.0)
        # In-memory engines outpace the on-disk one everywhere.
        for steps in (1, 5, 9):
            assert MEMGRAPH.cost_of_steps(steps) < NEO4J.cost_of_steps(steps)

    def test_minimum_one_step(self):
        for dialect in DIALECTS.values():
            assert dialect.cost_of_steps(0) == dialect.cost_of_steps(1)


class TestDialectAwareSynthesis:
    def test_uniqueness_predicates_only_for_deviating_dialects(self):
        from repro.core.runner import synthesizer_config_for
        from repro.gdb import create_engine

        for name in ("kuzu", "falkordb"):
            config = synthesizer_config_for(create_engine(name))
            assert config.needs_uniqueness_predicates
        for name in ("neo4j", "memgraph"):
            config = synthesizer_config_for(create_engine(name))
            assert not config.needs_uniqueness_predicates

    def test_no_call_clauses_for_unsupporting_dialects(self):
        """GQS never sends CALL to engines without procedure support."""
        from repro.core import QuerySynthesizer
        from repro.core.runner import synthesizer_config_for
        from repro.cypher import ast
        from repro.gdb import create_engine
        from repro.graph import GraphGenerator

        config = synthesizer_config_for(create_engine("memgraph"))
        for seed in range(25):
            schema, graph = GraphGenerator(seed=seed).generate_with_schema()
            synthesizer = QuerySynthesizer(
                graph, rng=random.Random(seed), config=config
            )
            result = synthesizer.synthesize()

            def clauses(query):
                if isinstance(query, ast.UnionQuery):
                    yield from clauses(query.left)
                    yield from clauses(query.right)
                else:
                    yield from query.clauses

            assert not any(
                isinstance(clause, ast.Call) for clause in clauses(result.query)
            )
