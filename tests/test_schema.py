"""Dedicated tests for the graph schema module."""

import random

import pytest

from repro.graph.schema import PROPERTY_TYPES, GraphSchema, PropertySpec


class TestPropertySpec:
    def test_valid_types(self):
        for ptype in PROPERTY_TYPES:
            PropertySpec("k", ptype)

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            PropertySpec("k", "TIMESTAMP")

    def test_frozen(self):
        spec = PropertySpec("k", "INTEGER")
        with pytest.raises(AttributeError):
            spec.name = "other"


class TestGraphSchema:
    def test_random_dimensions_configurable(self):
        schema = GraphSchema.random(
            random.Random(0), n_labels=3, n_rel_types=2,
            n_node_properties=4, n_rel_properties=1,
        )
        assert len(schema.labels) == 3
        assert len(schema.relationship_types) == 2
        assert len(schema.node_properties) == 4
        assert len(schema.rel_properties) == 1

    def test_naming_convention(self):
        """The paper's vocabulary: L<i> labels, T<i> types, k<i> properties."""
        schema = GraphSchema.random(random.Random(1))
        assert all(label.startswith("L") for label in schema.labels)
        assert all(t.startswith("T") for t in schema.relationship_types)
        names = [s.name for s in schema.node_properties + schema.rel_properties]
        assert all(name.startswith("k") for name in names)

    def test_property_type_lookup_spans_both_pools(self):
        schema = GraphSchema.random(random.Random(2))
        node_name = schema.node_properties[0].name
        rel_name = schema.rel_properties[0].name
        assert schema.property_type(node_name) is not None
        assert schema.property_type(rel_name) is not None

    def test_describe_is_json_friendly(self):
        import json

        schema = GraphSchema.random(random.Random(3))
        json.dumps(schema.describe())  # must not raise

    def test_deterministic_given_rng(self):
        a = GraphSchema.random(random.Random(4))
        b = GraphSchema.random(random.Random(4))
        assert a.describe() == b.describe()
