"""Edge-case tests for the executor's trickier semantics."""

import pytest

from repro.cypher.parser import parse_query
from repro.engine.errors import CypherRuntimeError
from repro.engine.executor import Executor
from repro.graph.model import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    g.add_node(["P"], {"id": 0, "name": "c", "age": 3})
    g.add_node(["P"], {"id": 1, "name": "a", "age": 1})
    g.add_node(["P"], {"id": 2, "name": "b", "age": 2})
    g.add_relationship(0, 1, "T", {"id": 0})
    g.add_relationship(1, 2, "T", {"id": 1})
    return g


def run(graph, text):
    return Executor(graph).execute(parse_query(text))


class TestOrderByEnvironments:
    def test_order_by_pre_projection_variable(self, graph):
        """ORDER BY may reference variables that are not projected."""
        rows = run(graph, "MATCH (n:P) RETURN n.age AS a ORDER BY n.name")
        assert [r[0] for r in rows.rows] == [1, 2, 3]

    def test_order_by_alias_shadows_variable(self, graph):
        rows = run(graph, "MATCH (n:P) RETURN n.name AS name ORDER BY name")
        assert [r[0] for r in rows.rows] == ["a", "b", "c"]

    def test_order_by_after_distinct_uses_projection(self, graph):
        rows = run(graph, "MATCH (n:P) RETURN DISTINCT n.age AS a ORDER BY a DESC")
        assert [r[0] for r in rows.rows] == [3, 2, 1]

    def test_order_by_aggregated_alias(self, graph):
        rows = run(
            graph,
            "MATCH (n:P) RETURN n.name AS name, count(*) AS c ORDER BY name DESC",
        )
        assert [r[0] for r in rows.rows] == ["c", "b", "a"]

    def test_order_by_stable_multikey(self, graph):
        rows = run(
            graph,
            "UNWIND [1, 1, 2] AS a UNWIND ['y', 'x'] AS b "
            "RETURN a, b ORDER BY a, b",
        )
        assert rows.rows == [
            (1, "x"), (1, "x"), (1, "y"), (1, "y"), (2, "x"), (2, "y"),
        ]


class TestWithChains:
    def test_with_where_sees_projection_only(self, graph):
        with pytest.raises(CypherRuntimeError):
            run(graph, "MATCH (n:P) WITH n.age AS a WHERE n.age > 1 RETURN a")

    def test_with_chain_rebinding(self, graph):
        rows = run(
            graph,
            "MATCH (n:P) WITH n.age AS a WITH a + 1 AS a2 WITH a2 * 10 AS a3 "
            "RETURN a3 ORDER BY a3",
        )
        assert [r[0] for r in rows.rows] == [20, 30, 40]

    def test_with_skip_applies_before_where(self, graph):
        # WITH ... SKIP/LIMIT then WHERE filters the truncated rows.
        rows = run(
            graph,
            "UNWIND [1,2,3,4] AS x WITH x ORDER BY x LIMIT 3 WHERE x > 1 "
            "RETURN x",
        )
        assert [r[0] for r in rows.rows] == [2, 3]

    def test_unwind_alias_reuse_across_with(self, graph):
        rows = run(
            graph,
            "UNWIND [1, 2] AS x WITH x, x * 2 AS y RETURN x + y AS z ORDER BY z",
        )
        assert [r[0] for r in rows.rows] == [3, 6]


class TestAggregationEdges:
    def test_grouped_collect_per_key(self, graph):
        rows = run(
            graph,
            "UNWIND [1, 1, 2] AS k UNWIND ['a'] AS v "
            "RETURN k, collect(v) AS vs ORDER BY k",
        )
        assert rows.rows == [(1, ["a", "a"]), (2, ["a"])]

    def test_null_group_key(self, graph):
        rows = run(
            graph,
            "UNWIND [null, null, 1] AS k RETURN k, count(*) AS c ORDER BY c",
        )
        assert (None, 2) in [tuple(r) for r in rows.rows]

    def test_avg_of_mixed_numbers(self, graph):
        rows = run(graph, "UNWIND [1, 2.0] AS x RETURN avg(x) AS a")
        assert rows.rows == [(1.5,)]

    def test_sum_requires_numbers(self, graph):
        from repro.engine.errors import CypherTypeError

        with pytest.raises(CypherTypeError):
            run(graph, "UNWIND ['a'] AS x RETURN sum(x) AS s")

    def test_min_max_cross_type_uses_orderability(self, graph):
        rows = run(graph, "UNWIND ['s', 1] AS x RETURN min(x) AS lo, max(x) AS hi")
        # Strings order before numbers in the global order.
        assert rows.rows == [("s", 1)]


class TestUnionEdges:
    def test_union_of_unions(self, graph):
        rows = run(
            graph,
            "RETURN 1 AS x UNION RETURN 2 AS x UNION ALL RETURN 1 AS x",
        )
        # Left-associative: (1 UNION 2) UNION ALL 1 -> [1, 2, 1].
        assert sorted(r[0] for r in rows.rows) == [1, 1, 2]

    def test_union_distinct_collapses_across_branches(self, graph):
        rows = run(
            graph,
            "UNWIND [1, 1] AS x RETURN x UNION UNWIND [1] AS x RETURN x",
        )
        assert rows.rows == [(1,)]


class TestMatchEdges:
    def test_match_after_unwind_preserves_rows(self, graph):
        rows = run(
            graph,
            "UNWIND [1, 2] AS x MATCH (n:P {id: 0}) RETURN x, n.name",
        )
        assert len(rows) == 2

    def test_failed_match_clears_rows(self, graph):
        rows = run(graph, "UNWIND [1, 2] AS x MATCH (n:GHOST) RETURN x")
        assert len(rows) == 0

    def test_anonymous_elements(self, graph):
        rows = run(graph, "MATCH ()-[]->() RETURN count(*) AS c")
        assert rows.rows == [(2,)]

    def test_long_chain(self, graph):
        rows = run(
            graph,
            "MATCH (a)-[r1]->(b)-[r2]->(c) RETURN a.id AS a, c.id AS c",
        )
        assert rows.rows == [(0, 2)]
