"""Tests for named path patterns (``MATCH p = ...``)."""

import pytest

from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine.executor import Executor
from repro.graph.model import Path, PropertyGraph


@pytest.fixture
def chain():
    g = PropertyGraph()
    g.add_node(["A"], {"id": 0})
    g.add_node(["B"], {"id": 1})
    g.add_node(["C"], {"id": 2})
    g.add_relationship(0, 1, "T", {"id": 0, "w": 1})
    g.add_relationship(1, 2, "T", {"id": 1, "w": 2})
    return g


def run(graph, text):
    return Executor(graph).execute(parse_query(text))


class TestParsing:
    def test_path_variable_parsed(self):
        query = parse_query("MATCH p = (a)-[r]->(b) RETURN p")
        assert query.clauses[0].patterns[0].path_variable == "p"

    def test_round_trip(self):
        text = "MATCH p = (a:A)-[r:T]->(b) RETURN length(p) AS len"
        printed = print_query(parse_query(text))
        assert printed.startswith("MATCH p = ")
        assert print_query(parse_query(printed)) == printed

    def test_mixed_named_and_plain(self):
        query = parse_query("MATCH p = (a)-[r]->(b), (c) RETURN p, c")
        patterns = query.clauses[0].patterns
        assert patterns[0].path_variable == "p"
        assert patterns[1].path_variable is None

    def test_path_variable_in_variables(self):
        query = parse_query("MATCH p = (a)-[r]->(b) RETURN p")
        assert "p" in set(query.clauses[0].patterns[0].variables())


class TestExecution:
    def test_path_value_bound(self, chain):
        rows = run(chain, "MATCH p = (a:A)-[r]->(b) RETURN p")
        assert len(rows) == 1
        path = rows.rows[0][0]
        assert isinstance(path, Path)
        assert len(path) == 1

    def test_length_function(self, chain):
        rows = run(chain, "MATCH p = (a:A)-[r1]->(b)-[r2]->(c) "
                          "RETURN length(p) AS len")
        assert rows.rows == [(2,)]

    def test_nodes_and_relationships_functions(self, chain):
        rows = run(
            chain,
            "MATCH p = (a:A)-[r1]->(b)-[r2]->(c) "
            "RETURN size(nodes(p)) AS n, size(relationships(p)) AS r",
        )
        assert rows.rows == [(3, 2)]

    def test_path_endpoints(self, chain):
        rows = run(
            chain,
            "MATCH p = (a)-[r]->(b) "
            "RETURN id(head(nodes(p))) AS s, id(last(nodes(p))) AS e "
            "ORDER BY s",
        )
        assert rows.rows == [(0, 1), (1, 2)]

    def test_zero_length_path(self, chain):
        rows = run(chain, "MATCH p = (a:A) RETURN length(p) AS len")
        assert rows.rows == [(0,)]

    def test_path_distinct(self, chain):
        rows = run(
            chain,
            "MATCH p = (a)-[r]->(b) WITH DISTINCT p RETURN count(*) AS c",
        )
        assert rows.rows == [(2,)]

    def test_paths_in_ordering(self, chain):
        rows = run(chain, "MATCH p = (a)-[r]->(b) RETURN p ORDER BY p")
        assert len(rows) == 2

    def test_undirected_named_path(self, chain):
        rows = run(
            chain,
            "MATCH p = (b:B)-[r]-(x) RETURN length(p) AS len",
        )
        assert len(rows) == 2
