"""Tests for the expression factory (§3.5, Algorithm 2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import ExpressionFactory, type_of_value
from repro.cypher import ast
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_expression
from repro.engine.evaluator import Evaluator
from repro.graph import values as V
from repro.graph.generator import GraphGenerator
from repro.graph.model import PropertyGraph


@pytest.fixture
def factory():
    graph = GraphGenerator(seed=5).generate()
    return ExpressionFactory(graph, random.Random(5))


def evaluate(factory, expr):
    return Evaluator(factory.graph).evaluate(expr, {})


class TestTypeOfValue:
    def test_buckets(self):
        assert type_of_value(None) == "NULL"
        assert type_of_value(True) == "BOOLEAN"
        assert type_of_value(3) == "INTEGER"
        assert type_of_value(3.5) == "FLOAT"
        assert type_of_value("s") == "STRING"
        assert type_of_value([1]) == "LIST"


# Values constant_expression must reproduce exactly.
constant_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12
    ),
    st.lists(st.integers(min_value=-100, max_value=100), max_size=4),
    st.lists(st.text(alphabet="abcXYZ09", max_size=5), max_size=4),
)


class TestConstantExpression:
    @given(constant_values, st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_evaluates_to_value(self, value, depth, seed):
        """The core §3.5 soundness property: expression == value, exactly."""
        graph = PropertyGraph()
        factory = ExpressionFactory(graph, random.Random(seed))
        expr = factory.constant_expression(value, depth)
        result = Evaluator(graph).evaluate(expr, {})
        assert V.equivalence_key(result) == V.equivalence_key(value)

    @given(constant_values, st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_round_trips_through_parser(self, value, depth, seed):
        """Generated expressions survive printing and reparsing."""
        graph = PropertyGraph()
        factory = ExpressionFactory(graph, random.Random(seed))
        expr = factory.constant_expression(value, depth)
        query = parse_query(f"RETURN {print_expression(expr)} AS v")
        from repro.engine.executor import Executor

        result = Executor(graph).execute(query)
        assert V.equivalence_key(result.rows[0][0]) == V.equivalence_key(value)

    def test_depth_zero_is_literal(self, factory):
        expr = factory.constant_expression(42, 0)
        assert expr == ast.Literal(42)

    def test_depth_increases_nesting(self, factory):
        deep = [factory.constant_expression(42, 5).depth() for _ in range(30)]
        shallow = [factory.constant_expression(42, 1).depth() for _ in range(30)]
        assert sum(deep) > sum(shallow)


class TestObfuscation:
    """Algorithm 2: distinguishing nested replacements."""

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_distinguishability_invariant(self, seed):
        """The wrapped access must still separate the target element from
        every competitor (line 8 of Algorithm 2)."""
        rng = random.Random(seed)
        graph = GraphGenerator(seed=seed).generate()
        factory = ExpressionFactory(graph, rng)
        evaluator = Evaluator(graph)

        nodes = list(graph.nodes())
        target = rng.choice(nodes)
        target_id = target.properties["id"]
        competitors = [
            n.properties["id"] for n in nodes if n.id != target.id
        ]
        access = ast.PropertyAccess(ast.Variable("n"), "id")
        expr, expected = factory.obfuscate_property_access(
            access, target_id, competitors, depth=3
        )
        # Instantiating with the target yields the tracked value...
        actual = evaluator.evaluate(expr, {"n": target})
        assert V.equivalence_key(actual) == V.equivalence_key(expected)
        # ...and with any competitor, something different.
        for other in nodes:
            if other.id == target.id:
                continue
            other_value = evaluator.evaluate(expr, {"n": other})
            assert V.equivalence_key(other_value) != V.equivalence_key(expected)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_value_is_reflexively_equal(self, seed):
        """The tracked value must satisfy `v = v` (no nulls/NaN inside)."""
        rng = random.Random(seed)
        graph = GraphGenerator(seed=seed).generate()
        factory = ExpressionFactory(graph, rng)
        node = rng.choice(list(graph.nodes()))
        access = ast.PropertyAccess(ast.Variable("n"), "id")
        _expr, expected = factory.obfuscate_property_access(
            access, node.properties["id"], [], depth=4
        )
        assert V.ternary_equals(expected, expected) is True

    def test_zero_depth_returns_original(self, factory):
        access = ast.PropertyAccess(ast.Variable("n"), "id")
        expr, value = factory.obfuscate_property_access(access, 7, [1, 2], 0)
        assert expr is access
        assert value == 7

    def test_nesting_grows_expression(self, factory):
        access = ast.PropertyAccess(ast.Variable("n"), "id")
        expr, _value = factory.obfuscate_property_access(access, 7, [1, 2], 5)
        assert expr.depth() > access.depth()
