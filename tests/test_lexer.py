"""Tests for the Cypher tokenizer."""

import pytest

from repro.cypher.lexer import LexError, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_whitespace_skipped(self):
        assert kinds("  \n\t MATCH ") == [("keyword", "MATCH")]

    def test_keywords_case_insensitive(self):
        assert kinds("match MaTcH MATCH") == [("keyword", "MATCH")] * 3

    def test_identifiers_preserve_case(self):
        assert kinds("myVar n0") == [("ident", "myVar"), ("ident", "n0")]

    def test_line_comment(self):
        assert kinds("MATCH // comment here\n RETURN") == [
            ("keyword", "MATCH"),
            ("keyword", "RETURN"),
        ]

    def test_comment_at_end(self):
        assert kinds("RETURN // trailing") == [("keyword", "RETURN")]


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [("int", "42")]

    def test_float(self):
        assert kinds("4.25") == [("float", "4.25")]

    def test_scientific(self):
        assert kinds("1e5 2.5E-3") == [("float", "1e5"), ("float", "2.5E-3")]

    def test_dotdot_not_float(self):
        # `0..3` is a slice, not two floats.
        assert kinds("0..3") == [("int", "0"), ("punct", ".."), ("int", "3")]

    def test_property_access_after_int_var(self):
        assert kinds("n.k1") == [
            ("ident", "n"), ("punct", "."), ("ident", "k1"),
        ]


class TestStrings:
    def test_single_quotes(self):
        assert kinds("'hello'") == [("string", "hello")]

    def test_double_quotes(self):
        assert kinds('"hi"') == [("string", "hi")]

    def test_escapes(self):
        assert kinds(r"'a\'b\\c\nd'") == [("string", "a'b\\c\nd")]

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_dangling_escape_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops\\")


class TestPunctuation:
    def test_arrows(self):
        assert kinds("-[r]->") == [
            ("punct", "-"), ("punct", "["), ("ident", "r"),
            ("punct", "]"), ("punct", "->"),
        ]

    def test_left_arrow(self):
        assert kinds("<-[") == [("punct", "<-"), ("punct", "[")]

    def test_comparison_operators(self):
        assert kinds("<= >= <> < > =") == [
            ("punct", "<="), ("punct", ">="), ("punct", "<>"),
            ("punct", "<"), ("punct", ">"), ("punct", "="),
        ]

    def test_regex_match_operator(self):
        assert kinds("=~") == [("punct", "=~")]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestBacktick:
    def test_backtick_identifier(self):
        assert kinds("`weird name`") == [("ident", "weird name")]

    def test_unterminated_backtick(self):
        with pytest.raises(LexError):
            tokenize("`oops")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("MATCH")[0]
        assert token.is_keyword("MATCH")
        assert token.is_keyword("MATCH", "RETURN")
        assert not token.is_keyword("RETURN")

    def test_is_punct(self):
        token = tokenize("(")[0]
        assert token.is_punct("(")
        assert not token.is_punct(")")

    def test_positions_recorded(self):
        tokens = tokenize("MATCH (n)")
        assert tokens[0].position == 0
        assert tokens[1].position == 6
