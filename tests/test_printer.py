"""Tests for AST-to-Cypher rendering."""

import pytest

from repro.cypher import ast
from repro.cypher.parser import parse_expression, parse_query
from repro.cypher.printer import (
    print_clause,
    print_expression,
    print_pattern,
    print_query,
)


class TestLiterals:
    @pytest.mark.parametrize("value,text", [
        (None, "null"),
        (True, "true"),
        (False, "false"),
        (42, "42"),
        (-3, "-3"),
        (1.5, "1.5"),
        ("hi", "'hi'"),
    ])
    def test_scalars(self, value, text):
        assert print_expression(ast.Literal(value)) == text

    def test_string_escaping(self):
        rendered = print_expression(ast.Literal("a'b\\c"))
        assert parse_expression(rendered) == ast.Literal("a'b\\c")

    def test_float_round_trip_exact(self):
        value = 0.30000000000000004
        rendered = print_expression(ast.Literal(value))
        assert parse_expression(rendered) == ast.Literal(value)


class TestExpressions:
    def test_binary_parenthesized(self):
        expr = ast.Binary("+", ast.Literal(1), ast.Literal(2))
        assert print_expression(expr) == "((1) + (2))"

    def test_keyword_operator(self):
        expr = ast.Binary("STARTS WITH", ast.Literal("ab"), ast.Literal("a"))
        assert "STARTS WITH" in print_expression(expr)

    def test_not_rendering(self):
        expr = ast.Unary("NOT", ast.Literal(True))
        assert print_expression(expr) == "(NOT (true))"

    def test_is_null(self):
        expr = ast.IsNull(ast.Variable("x"), negated=True)
        assert print_expression(expr) == "((x) IS NOT NULL)"

    def test_function_with_distinct(self):
        expr = ast.FunctionCall("collect", (ast.Variable("x"),), distinct=True)
        assert print_expression(expr) == "collect(DISTINCT x)"

    def test_count_star(self):
        assert print_expression(ast.CountStar()) == "count(*)"

    def test_case(self):
        expr = ast.CaseExpression(
            None,
            (ast.CaseAlternative(ast.Literal(True), ast.Literal(1)),),
            ast.Literal(2),
        )
        assert print_expression(expr) == "(CASE WHEN true THEN 1 ELSE 2 END)"

    def test_property_chain(self):
        expr = ast.PropertyAccess(
            ast.PropertyAccess(ast.Variable("n"), "a"), "b"
        )
        assert print_expression(expr) == "n.a.b"

    def test_property_on_function_parenthesized(self):
        expr = ast.PropertyAccess(
            ast.FunctionCall("endNode", (ast.Variable("r"),)), "id"
        )
        assert print_expression(expr) == "(endNode(r)).id"


class TestPatterns:
    def test_node_full(self):
        node = ast.NodePattern("n", ("A", "B"))
        assert print_pattern(ast.PathPattern((node,))) == "(n:A:B)"

    def test_anonymous_node(self):
        assert print_pattern(ast.PathPattern((ast.NodePattern(),))) == "()"

    def test_directions(self):
        a, b = ast.NodePattern("a"), ast.NodePattern("b")
        for direction, text in [
            (ast.OUT, "(a)-[r]->(b)"),
            (ast.IN, "(a)<-[r]-(b)"),
            (ast.BOTH, "(a)-[r]-(b)"),
        ]:
            pattern = ast.PathPattern(
                (a, b), (ast.RelationshipPattern("r", (), direction),)
            )
            assert print_pattern(pattern) == text

    def test_rel_types(self):
        pattern = ast.PathPattern(
            (ast.NodePattern("a"), ast.NodePattern("b")),
            (ast.RelationshipPattern("r", ("T1", "T2")),),
        )
        assert print_pattern(pattern) == "(a)-[r:T1|T2]->(b)"

    def test_anonymous_rel(self):
        pattern = ast.PathPattern(
            (ast.NodePattern("a"), ast.NodePattern("b")),
            (ast.RelationshipPattern(),),
        )
        assert print_pattern(pattern) == "(a)-[]->(b)"

    def test_inline_properties(self):
        props = ast.MapLiteral((("id", ast.Literal(1)),))
        pattern = ast.PathPattern((ast.NodePattern("n", (), props),))
        assert print_pattern(pattern) == "(n {id: 1})"


class TestClauses:
    def test_optional_match(self):
        clause = ast.Match(
            (ast.PathPattern((ast.NodePattern("n"),)),), optional=True
        )
        assert print_clause(clause).startswith("OPTIONAL MATCH")

    def test_with_everything(self):
        clause = ast.With(
            (ast.ProjectionItem(ast.Variable("n")),),
            distinct=True,
            order_by=(ast.OrderItem(ast.Variable("n"), True),),
            skip=ast.Literal(1),
            limit=ast.Literal(2),
            where=ast.IsNull(ast.Variable("n"), negated=True),
        )
        text = print_clause(clause)
        assert text == (
            "WITH DISTINCT n ORDER BY n DESC SKIP 1 LIMIT 2 "
            "WHERE ((n) IS NOT NULL)"
        )

    def test_write_clauses(self):
        assert print_clause(
            ast.Delete((ast.Variable("n"),), detach=True)
        ) == "DETACH DELETE n"
        assert print_clause(
            ast.SetClause((ast.SetItem("n", "x", ast.Literal(1)),))
        ) == "SET n.x = 1"
        assert print_clause(
            ast.Remove((ast.RemoveItem("n", key="x"),
                        ast.RemoveItem("n", label="L")))
        ) == "REMOVE n.x, n:L"
        assert print_clause(
            ast.Merge(ast.PathPattern((ast.NodePattern("n", ("L",)),)))
        ) == "MERGE (n:L)"

    def test_union_rendering(self):
        q1 = ast.Query((ast.Return((ast.ProjectionItem(ast.Literal(1), "x"),)),))
        q2 = ast.Query((ast.Return((ast.ProjectionItem(ast.Literal(2), "x"),)),))
        assert print_query(ast.UnionQuery(q1, q2, all=True)) == (
            "RETURN 1 AS x UNION ALL RETURN 2 AS x"
        )

    def test_call_rendering(self):
        clause = ast.Call("db.labels", (), (("label", "l"),))
        assert print_clause(clause) == "CALL db.labels() YIELD label AS l"


class TestRoundTripStability:
    @pytest.mark.parametrize("text", [
        "MATCH (a:L {x: 1})-[r:T]->(b) WHERE ((a.y) IS NULL) RETURN a.x AS v",
        "UNWIND [1, 2] AS x WITH DISTINCT x RETURN x ORDER BY x DESC",
        "MATCH (n) RETURN count(*), collect(DISTINCT n.x) AS xs",
    ])
    def test_fixpoint(self, text):
        once = print_query(parse_query(text))
        assert print_query(parse_query(once)) == once
