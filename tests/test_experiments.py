"""Tests for the experiment harness (small budgets; shapes only)."""

import pytest

from repro.core.runner import CampaignResult
from repro.experiments import (
    figure10,
    figure10_throughput,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure18,
    make_tester,
    render_histogram,
    render_kv,
    render_series,
    render_table,
    run_full_gqs_campaigns,
    run_tool_campaign,
    table2,
    table3,
    table5,
    tester_supports,
)


@pytest.fixture(scope="module")
def mini_campaigns():
    """A small compressed campaign shared by the harness tests."""
    return run_full_gqs_campaigns(seed=1, max_queries=250, gate_scale=0.01)


class TestCampaignHelpers:
    def test_supported_matrix(self):
        assert tester_supports("GQS", "kuzu")
        assert not tester_supports("GDBMeter", "memgraph")
        assert not tester_supports("Gamera", "memgraph")
        assert not tester_supports("GQT", "memgraph")
        assert tester_supports("GRev", "memgraph")
        assert not tester_supports("GDsmith", "kuzu")

    def test_make_tester_names(self):
        for name in ("GQS", "GDsmith", "GDBMeter", "Gamera", "GQT", "GRev"):
            tester = make_tester(name, "neo4j")
            assert tester.name == name
        with pytest.raises(ValueError):
            make_tester("nope", "neo4j")

    def test_run_tool_campaign_unsupported_returns_none(self):
        assert run_tool_campaign("GDBMeter", "memgraph") is None

    def test_run_tool_campaign_small(self):
        result = run_tool_campaign(
            "GQS", "memgraph", budget_seconds=10.0, seed=2
        )
        assert isinstance(result, CampaignResult)
        assert result.queries_run > 0


class TestTables:
    def test_table2_static(self):
        rows = table2()
        assert len(rows) == 4
        assert rows[0]["GDB"] == "Neo4j"
        assert rows[3]["Tested version"] == "4.2.0"

    def test_table3_shape(self, mini_campaigns):
        rows = table3(mini_campaigns)
        assert rows[-1]["GDB"] == "Total"
        total = rows[-1]
        assert total["logic detected"] >= total["logic confirmed"] >= total["logic fixed"]
        assert total["logic detected"] + total["other detected"] >= 10

    def test_table5_ordering(self):
        rows = table5(n_queries=40, seed=3)
        by_name = {row["Tester"]: row for row in rows}
        assert by_name["GQS"]["Dependency"] > by_name["GDBMeter"]["Dependency"]
        assert by_name["GQS"]["Pattern"] > by_name["Gamera"]["Pattern"]


class TestFigures:
    def test_records_and_distributions(self, mini_campaigns):
        from repro.experiments import collect_trigger_records

        records = collect_trigger_records(mini_campaigns)
        assert records
        fig10 = figure10(records)
        assert set(fig10) == {"Neo4j", "Memgraph", "Kùzu", "FalkorDB"}
        assert sum(sum(v.values()) for v in fig10.values()) == len(records)

        for figure in (figure13, figure14, figure15):
            histogram = figure(records)
            assert sum(histogram.values()) == len(records)

        clause_hist = figure11(records)
        assert clause_hist.get("MATCH", 0) > 0
        bug_hist = figure12(records)
        assert max(bug_hist.values()) <= len(records)

    def test_throughput_model(self):
        throughput = figure10_throughput()
        for series in throughput.values():
            # Monotonically decreasing queries/second as steps grow.
            values = [series[s] for s in range(1, 10)]
            assert values == sorted(values, reverse=True)

    def test_figure18_series(self):
        campaigns = {
            ("GQS", "neo4j"): _fake_campaign([(1.0, "a"), (5.0, "b")]),
            ("GRev", "neo4j"): _fake_campaign([(8.0, "c")]),
        }
        series = figure18(campaigns, engines=("neo4j",), n_points=4)
        neo = series["Neo4j"]
        assert neo["GQS"][-1][1] == 2
        assert neo["GRev"][0][1] == 0


def _fake_campaign(timeline):
    result = CampaignResult("T", "neo4j")
    result.sim_seconds = 10.0
    result.timeline = timeline
    return result


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "bb": "xy"}, {"a": 222, "bb": ""}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_render_table_empty(self):
        assert "(empty)" in render_table([], "T")

    def test_render_histogram(self):
        text = render_histogram({"x": 10, "y": 0}, "H", width=10)
        assert "##########" in text
        assert " 0" in text

    def test_render_series(self):
        text = render_series({"GQS": [(0, 0), (1.5, 2)]})
        assert "0:0" in text and "1.5:2" in text

    def test_render_kv(self):
        text = render_kv({"k": "v"}, "T")
        assert "k: v" in text
