"""Boundary cases of the value model that bit us during development."""



from repro.graph import values as V


class TestFloatBoundaries:
    def test_infinities_compare(self):
        assert V.ternary_compare(float("inf"), 1e308) == 1
        assert V.ternary_compare(float("-inf"), -1e308) == -1
        assert V.ternary_equals(float("inf"), float("inf")) is True

    def test_infinity_ordering(self):
        ordered = V.sort_values([1.0, float("inf"), float("-inf"), 0])
        assert ordered == [float("-inf"), 0, 1.0, float("inf")]

    def test_negative_zero_equals_zero(self):
        assert V.ternary_equals(-0.0, 0.0) is True
        assert V.equivalent(-0.0, 0.0)

    def test_large_int_vs_float(self):
        assert V.ternary_equals(2**53, float(2**53)) is True

    def test_equivalence_key_of_infinity_hashable(self):
        hash(V.equivalence_key(float("inf")))
        hash(V.equivalence_key([float("-inf"), None]))


class TestDeepNesting:
    def test_deep_list_equality(self):
        deep_a = deep_b = 1
        for _ in range(50):
            deep_a = [deep_a]
            deep_b = [deep_b]
        assert V.ternary_equals(deep_a, deep_b) is True
        assert V.equivalent(deep_a, deep_b)

    def test_deep_list_ordering(self):
        shallow = [[1]]
        deep = [[[1]]]
        V.sort_values([shallow, deep])  # must not raise


class TestEmptyContainers:
    def test_empty_list_equality(self):
        assert V.ternary_equals([], []) is True
        assert V.ternary_equals([], [None]) is False

    def test_empty_map_equality(self):
        assert V.ternary_equals({}, {}) is True
        assert V.ternary_equals({}, {"a": None}) is False

    def test_empty_list_sorts_first_among_lists(self):
        assert V.sort_values([[1], [], [0]]) == [[], [0], [1]]


class TestMixedMapSemantics:
    def test_map_with_null_value_undecided(self):
        assert V.ternary_equals({"a": None}, {"a": None}) is None

    def test_map_key_mismatch_decides_before_null(self):
        assert V.ternary_equals({"a": None}, {"b": 1}) is False

    def test_map_ordering_by_sorted_keys(self):
        ordered = V.sort_values([{"b": 1}, {"a": 9}])
        assert ordered == [{"a": 9}, {"b": 1}]

    def test_map_equivalence_ignores_insertion_order(self):
        assert V.equivalent({"a": 1, "b": 2}, {"b": 2, "a": 1})


class TestStringEdgeCases:
    def test_empty_string_comparisons(self):
        assert V.ternary_compare("", "a") == -1
        assert V.ternary_equals("", "") is True

    def test_unicode_strings(self):
        assert V.ternary_equals("héllo", "héllo") is True
        assert V.ternary_compare("a", "é") == -1
