"""Tests for the Cypher value model (ternary logic, equivalence, ordering)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import values as V
from repro.graph.model import Node, Relationship


# ---------------------------------------------------------------------------
# Ternary equality
# ---------------------------------------------------------------------------

class TestTernaryEquals:
    def test_null_propagates(self):
        assert V.ternary_equals(None, 1) is None
        assert V.ternary_equals(1, None) is None
        assert V.ternary_equals(None, None) is None

    def test_numbers_cross_type(self):
        assert V.ternary_equals(1, 1.0) is True
        assert V.ternary_equals(1, 2.0) is False

    def test_nan_never_equals(self):
        assert V.ternary_equals(float("nan"), float("nan")) is False
        assert V.ternary_equals(float("nan"), 1.0) is False

    def test_strings(self):
        assert V.ternary_equals("a", "a") is True
        assert V.ternary_equals("a", "b") is False

    def test_booleans_not_numbers(self):
        # true = 1 is false in Cypher: booleans and numbers never compare equal.
        assert V.ternary_equals(True, 1) is False
        assert V.ternary_equals(False, 0) is False

    def test_cross_type_is_false(self):
        assert V.ternary_equals("1", 1) is False
        assert V.ternary_equals([1], 1) is False

    def test_list_structural(self):
        assert V.ternary_equals([1, 2], [1, 2]) is True
        assert V.ternary_equals([1, 2], [1, 3]) is False
        assert V.ternary_equals([1, 2], [1]) is False

    def test_list_null_propagation(self):
        assert V.ternary_equals([1, None], [1, 2]) is None
        assert V.ternary_equals([1, None], [2, None]) is False  # decided early
        assert V.ternary_equals([1, None], [1, None]) is None

    def test_map_structural(self):
        assert V.ternary_equals({"a": 1}, {"a": 1}) is True
        assert V.ternary_equals({"a": 1}, {"a": 2}) is False
        assert V.ternary_equals({"a": 1}, {"b": 1}) is False
        assert V.ternary_equals({"a": None}, {"a": 1}) is None

    def test_nodes_by_identity(self):
        node_a = Node(1, ["X"], {"p": 1})
        node_b = Node(1, ["Y"], {"p": 2})
        node_c = Node(2)
        assert V.ternary_equals(node_a, node_b) is True
        assert V.ternary_equals(node_a, node_c) is False

    def test_relationships_by_identity(self):
        rel_a = Relationship(5, "T", 0, 1)
        rel_b = Relationship(5, "U", 2, 3)
        assert V.ternary_equals(rel_a, rel_b) is True


# ---------------------------------------------------------------------------
# Ternary comparison
# ---------------------------------------------------------------------------

class TestTernaryCompare:
    def test_numbers(self):
        assert V.ternary_compare(1, 2) == -1
        assert V.ternary_compare(2.5, 1) == 1
        assert V.ternary_compare(3, 3.0) == 0

    def test_null(self):
        assert V.ternary_compare(None, 1) is None
        assert V.ternary_compare("a", None) is None

    def test_incomparable_types(self):
        assert V.ternary_compare(1, "a") is None
        assert V.ternary_compare(True, 1) is None

    def test_strings_lexicographic(self):
        assert V.ternary_compare("abc", "abd") == -1
        assert V.ternary_compare("b", "a") == 1

    def test_booleans(self):
        assert V.ternary_compare(False, True) == -1

    def test_nan_incomparable(self):
        assert V.ternary_compare(float("nan"), 1.0) is None

    def test_lists_elementwise(self):
        assert V.ternary_compare([1, 2], [1, 3]) == -1
        assert V.ternary_compare([1, 2], [1, 2]) == 0
        assert V.ternary_compare([1, 2], [1]) == 1
        assert V.ternary_compare([1, None], [2, 3]) == -1  # decided before null
        assert V.ternary_compare([1, None], [1, 3]) is None


# ---------------------------------------------------------------------------
# Three-valued connectives
# ---------------------------------------------------------------------------

class TestKleeneLogic:
    values = [True, False, None]

    def test_and_truth_table(self):
        assert V.ternary_and(True, True) is True
        assert V.ternary_and(True, None) is None
        assert V.ternary_and(False, None) is False
        assert V.ternary_and(None, None) is None

    def test_or_truth_table(self):
        assert V.ternary_or(False, False) is False
        assert V.ternary_or(True, None) is True
        assert V.ternary_or(False, None) is None

    def test_xor_truth_table(self):
        assert V.ternary_xor(True, False) is True
        assert V.ternary_xor(True, True) is False
        assert V.ternary_xor(True, None) is None

    def test_not(self):
        assert V.ternary_not(True) is False
        assert V.ternary_not(None) is None

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_de_morgan(self, a, b):
        assert V.ternary_not(V.ternary_and(a, b)) == V.ternary_or(
            V.ternary_not(a), V.ternary_not(b)
        )

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_commutativity(self, a, b):
        assert V.ternary_and(a, b) == V.ternary_and(b, a)
        assert V.ternary_or(a, b) == V.ternary_or(b, a)
        assert V.ternary_xor(a, b) == V.ternary_xor(b, a)

    def test_coerce_rejects_non_boolean(self):
        with pytest.raises(V.CypherTypeError):
            V.coerce_to_boolean(1)


# ---------------------------------------------------------------------------
# Equivalence and orderability
# ---------------------------------------------------------------------------

# A strategy over Cypher scalar values (no graph elements).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=8),
)
cypher_values = st.recursive(
    scalars, lambda inner: st.lists(inner, max_size=4), max_leaves=10
)


class TestEquivalence:
    def test_null_equivalent_null(self):
        assert V.equivalent(None, None)

    def test_nan_equivalent_nan(self):
        assert V.equivalent(float("nan"), float("nan"))

    def test_int_float_equivalence(self):
        assert V.equivalent(1, 1.0)
        assert not V.equivalent(1, 1.5)

    def test_bool_not_equivalent_to_int(self):
        assert not V.equivalent(True, 1)

    @given(cypher_values)
    def test_reflexive(self, value):
        assert V.equivalent(value, value)

    @given(cypher_values, cypher_values)
    def test_consistent_with_ternary_equality(self, a, b):
        # If Cypher says definitely-equal, equivalence must agree.
        if V.ternary_equals(a, b) is True:
            assert V.equivalent(a, b)

    @given(cypher_values)
    def test_key_hashable(self, value):
        hash(V.equivalence_key(value))


class TestOrderability:
    def test_nulls_sort_last(self):
        assert V.sort_values([None, 1, None, 2]) == [1, 2, None, None]

    def test_type_rank_order(self):
        ordered = V.sort_values(["s", True, 3, None, [1]])
        assert ordered == [[1], "s", True, 3, None]

    def test_descending_reverses(self):
        values = [3, 1, None, 2]
        descending = V.sort_values(values, descending=True)
        assert descending == [None, 3, 2, 1]

    def test_nan_after_numbers(self):
        nan = float("nan")
        ordered = V.sort_values([nan, 1.0, 2.0, None])
        assert ordered[0:2] == [1.0, 2.0]
        assert math.isnan(ordered[2])
        assert ordered[3] is None

    def test_list_ordering_elementwise(self):
        assert V.sort_values([[2], [1, 5], [1]]) == [[1], [1, 5], [2]]

    @given(st.lists(cypher_values, max_size=10))
    def test_sort_total_and_stable(self, values):
        # Sorting must always succeed (total order) and be idempotent.
        once = V.sort_values(values)
        twice = V.sort_values(once)
        assert [V.equivalence_key(v) for v in once] == [
            V.equivalence_key(v) for v in twice
        ]

    @given(cypher_values, cypher_values)
    def test_order_antisymmetry(self, a, b):
        ka, kb = V.order_key(a), V.order_key(b)
        assert not (ka < kb and kb < ka)


class TestTypeName:
    def test_names(self):
        assert V.type_name(None) == "NULL"
        assert V.type_name(True) == "BOOLEAN"
        assert V.type_name(1) == "INTEGER"
        assert V.type_name(1.5) == "FLOAT"
        assert V.type_name("x") == "STRING"
        assert V.type_name([]) == "LIST"
        assert V.type_name({}) == "MAP"
        assert V.type_name(Node(0)) == "NODE"
        assert V.type_name(Relationship(0, "T", 0, 0)) == "RELATIONSHIP"
