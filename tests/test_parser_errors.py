"""Parser robustness: malformed input must raise ParseError, never crash."""

import pytest

from repro.cypher.parser import ParseError, parse_expression, parse_query


MALFORMED_QUERIES = [
    "",
    "MATCH",
    "MATCH (",
    "MATCH (n",
    "MATCH (n))",
    "MATCH (n) RETURN",
    "MATCH (n) RETURN n AS",
    "MATCH (n)-[r] RETURN n",
    "MATCH (n)-[r]-> RETURN n",
    "MATCH (n) WHERE RETURN n",
    "UNWIND [1,2] x RETURN x",
    "UNWIND [1,2] AS RETURN x",
    "WITH RETURN 1",
    "RETURN 1 AS x UNION",
    "CALL RETURN 1",
    "CALL db.labels( RETURN 1",
    "MATCH (n) SET n = 1",
    "MATCH (n) REMOVE n",
    "MERGE RETURN 1",
    "RETURN 1 2",
    "MATCH (n:) RETURN n",
    "MATCH (n) ORDER BY n RETURN n",
    "RETURN CASE END",
    "RETURN [1, 2",
    "RETURN {a: }",
    "RETURN 'unclosed",
    "RETURN `unclosed",
    "RETURN @",
]


@pytest.mark.parametrize("text", MALFORMED_QUERIES)
def test_malformed_queries_raise_parse_error(text):
    with pytest.raises(ParseError):
        parse_query(text)


MALFORMED_EXPRESSIONS = [
    "",
    "1 +",
    "(1",
    "abs(",
    "n.",
    "[1,",
    "{a:",
    "CASE WHEN 1 THEN",
    "x IS",
    "x IS NOT",
    "NOT",
]


@pytest.mark.parametrize("text", MALFORMED_EXPRESSIONS)
def test_malformed_expressions_raise_parse_error(text):
    with pytest.raises(ParseError):
        parse_expression(text)


class TestErrorPositions:
    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("MATCH (n) RETURN n AS")
        assert "at" in str(excinfo.value)

    def test_trailing_garbage_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_expression("1 1")
        assert "trailing" in str(excinfo.value)


class TestAlmostValid:
    """Inputs near the grammar boundary that must parse."""

    @pytest.mark.parametrize("text", [
        "MATCH (n) RETURN n ORDER BY n ASCENDING",
        "MATCH (n) RETURN n ORDER BY n DESCENDING",
        "RETURN 1 AS all",               # soft keyword as alias
        "RETURN 1 AS end",
        "MATCH (n)-[r:T|U]->(m) RETURN n",
        "MATCH (n)-[r:T|:U]->(m) RETURN n",  # alternative alternation form
        "MATCH (`weird name`) RETURN 1 AS x",
        "RETURN 1.5e3 AS x",
        "RETURN 1e-2 AS x",
    ])
    def test_parses(self, text):
        parse_query(text)
