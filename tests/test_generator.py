"""Tests for the random schema and graph generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generator import GeneratorConfig, GraphGenerator, random_value_for
from repro.graph.schema import PROPERTY_TYPES, GraphSchema, PropertySpec


class TestSchema:
    def test_random_schema_shape(self):
        schema = GraphSchema.random(random.Random(0))
        assert len(schema.labels) == 12
        assert len(schema.relationship_types) == 4
        assert all(spec.type in PROPERTY_TYPES for spec in schema.node_properties)

    def test_property_names_unique(self):
        schema = GraphSchema.random(random.Random(1))
        names = [s.name for s in schema.node_properties + schema.rel_properties]
        assert len(names) == len(set(names))

    def test_property_type_lookup(self):
        schema = GraphSchema(
            ["L"], ["T"], [PropertySpec("k0", "INTEGER")], [PropertySpec("k1", "STRING")]
        )
        assert schema.property_type("k0") == "INTEGER"
        assert schema.property_type("k1") == "STRING"
        assert schema.property_type("nope") is None

    def test_invalid_property_type_rejected(self):
        with pytest.raises(ValueError):
            PropertySpec("k", "BLOB")

    def test_describe_round_trip_fields(self):
        schema = GraphSchema.random(random.Random(2))
        desc = schema.describe()
        assert desc["labels"] == schema.labels
        assert len(desc["node_properties"]) == len(schema.node_properties)


class TestRandomValues:
    @pytest.mark.parametrize("ptype", PROPERTY_TYPES)
    def test_value_types(self, ptype):
        rng = random.Random(3)
        for _ in range(20):
            value = random_value_for(PropertySpec("k", ptype), rng)
            if ptype == "INTEGER":
                assert isinstance(value, int) and not isinstance(value, bool)
            elif ptype == "FLOAT":
                assert isinstance(value, float)
            elif ptype == "BOOLEAN":
                assert isinstance(value, bool)
            elif ptype == "STRING":
                assert isinstance(value, str) and value
            else:
                assert isinstance(value, list) and value
                assert all(isinstance(item, str) for item in value)


class TestGraphGenerator:
    def test_deterministic_by_seed(self):
        g1 = GraphGenerator(seed=42).generate()
        g2 = GraphGenerator(seed=42).generate()
        assert g1.node_count == g2.node_count
        assert g1.relationship_count == g2.relationship_count
        for node in g1.nodes():
            assert g2.node(node.id).properties == node.properties

    def test_different_seeds_differ(self):
        g1 = GraphGenerator(seed=1).generate()
        g2 = GraphGenerator(seed=2).generate()
        same = g1.node_count == g2.node_count and all(
            g2.node(n.id).properties == n.properties for n in g1.nodes()
        )
        assert not same

    def test_config_bounds_respected(self):
        config = GeneratorConfig(min_nodes=5, max_nodes=6, min_relationships=3,
                                 max_relationships=8)
        for seed in range(20):
            graph = GraphGenerator(seed=seed, config=config).generate()
            assert 5 <= graph.node_count <= 6
            assert 3 <= graph.relationship_count <= 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_nodes=5, max_nodes=2)
        with pytest.raises(ValueError):
            GeneratorConfig(min_relationships=9, max_relationships=2)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_ids_unique_and_dense(self, seed):
        """Every element carries a unique integer `id` property."""
        graph = GraphGenerator(seed=seed).generate()
        node_ids = [node.properties["id"] for node in graph.nodes()]
        rel_ids = [rel.properties["id"] for rel in graph.relationships()]
        assert sorted(node_ids) == list(range(graph.node_count))
        assert sorted(rel_ids) == list(range(graph.relationship_count))

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_every_node_labeled(self, seed):
        graph = GraphGenerator(seed=seed).generate()
        assert all(node.labels for node in graph.nodes())

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_relationship_endpoints_exist(self, seed):
        graph = GraphGenerator(seed=seed).generate()
        for rel in graph.relationships():
            assert graph.has_node(rel.start)
            assert graph.has_node(rel.end)

    def test_schema_conformance(self):
        generator = GraphGenerator(seed=9)
        schema, graph = generator.generate_with_schema()
        known = {spec.name for spec in schema.node_properties} | {"id"}
        for node in graph.nodes():
            assert set(node.properties) <= known
        rel_known = {spec.name for spec in schema.rel_properties} | {"id"}
        for rel in graph.relationships():
            assert set(rel.properties) <= rel_known

    def test_paper_default_sizes(self):
        """The §5.1 setup: small graphs, at most 13 nodes."""
        config = GeneratorConfig()
        for seed in range(30):
            graph = GraphGenerator(seed=seed, config=config).generate()
            assert graph.node_count <= 13
