"""Coverage for smaller surfaces: catalog doc, formatting, record stats."""

import pytest

from repro.gdb import create_engine
from repro.graph.generator import GraphGenerator


class TestBugCatalogDoc:
    def test_render_includes_every_fault(self):
        import importlib.util
        from pathlib import Path

        script = Path("scripts/generate_bug_catalog.py")
        spec = importlib.util.spec_from_file_location("gen_bugs", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        text = module.render()
        from repro.gdb import all_faults

        for fault in all_faults():
            assert fault.fault_id in text
        assert "Figure 7" in text  # the Neo4j headline bug
        assert "session-only" in text

    def test_checked_in_catalog_is_current(self):
        """docs/BUGS.md must match the generator output."""
        import importlib.util
        from pathlib import Path

        script = Path("scripts/generate_bug_catalog.py")
        spec = importlib.util.spec_from_file_location("gen_bugs2", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert Path("docs/BUGS.md").read_text() == module.render()


class TestDriverFormatting:
    def test_list_rendering_recurses(self):
        from repro.engine.binding import ResultSet

        engine = create_engine("falkordb", faults_enabled=False)
        result = ResultSet(["x"], [([1.23456789012, "a"],)])
        rendered = engine.format_result(result)
        assert rendered[0][0].startswith("[1.23457")  # 6-digit driver output

    def test_full_precision_engines(self):
        from repro.engine.binding import ResultSet

        engine = create_engine("neo4j", faults_enabled=False)
        result = ResultSet(["x"], [(1.23456789012,)])
        assert engine.format_result(result) == [["1.23456789012"]]


class TestTriggerRecordStats:
    def test_graph_sizes_recorded(self):
        from repro.core.runner import GQSTester

        engine = create_engine("falkordb", gate_scale=0.0)
        result = GQSTester().run(engine, budget_seconds=15.0, seed=9)
        assert result.trigger_records
        for record in result.trigger_records:
            assert 1 <= record["graph_nodes"] <= 13
            assert record["graph_relationships"] >= 0
            assert 1 <= record["ground_truth_size"] <= 6


class TestFigureBuckets:
    def test_buckets_partition_counts(self):
        from repro.experiments import figure13, figure14, figure15

        records = [
            {"dependencies": d, "patterns": p, "depth": n}
            for d, p, n in [(0, 0, 0), (15, 2, 4), (30, 5, 7), (70, 11, 20)]
        ]
        for figure in (figure13, figure14, figure15):
            histogram = figure(records)
            assert sum(histogram.values()) == len(records)


class TestGeneratorProfiles:
    @pytest.mark.parametrize("tool,max_clauses", [
        ("GDBMeter", 2),
        ("Gamera", 2),
        ("GQT", 4),
    ])
    def test_small_tools_stay_small(self, tool, max_clauses):
        import random

        from repro.baselines.common import RandomQueryGenerator
        from repro.cypher.analysis import analyze
        from repro.experiments import make_tester

        tester = make_tester(tool, "neo4j")
        for seed in range(20):
            graph = GraphGenerator(seed=seed).generate()
            qgen = RandomQueryGenerator(graph, random.Random(seed), tester.profile)
            assert analyze(qgen.generate()).clauses <= max_clauses
