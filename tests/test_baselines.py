"""Tests for the five baseline testers (§5.4)."""

import random

import pytest

from repro.baselines import (
    GDBMeterTester,
    GDsmithTester,
    GameraTester,
    GQTTester,
    GRevTester,
)
from repro.baselines.common import GeneratorProfile, RandomQueryGenerator
from repro.baselines.gdbmeter import partition_query
from repro.baselines.gamera import augmentation_applicable, relax_one_direction
from repro.baselines.gqt import add_random_label, add_tautology, drop_where
from repro.baselines.grev import (
    double_negate_where,
    permute_patterns,
    reverse_patterns,
)
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine.binding import ResultSet
from repro.engine.executor import Executor
from repro.gdb import ReferenceGDB, create_engine
from repro.graph.generator import GraphGenerator


def clean_engine(name="neo4j"):
    engine = create_engine(name, faults_enabled=False)
    return engine


class TestRandomQueryGenerator:
    def test_queries_parse_and_print(self):
        graph = GraphGenerator(seed=1).generate()
        profile = GeneratorProfile(name="t", min_clauses=2, max_clauses=6,
                                   with_probability=0.3, unwind_probability=0.2)
        qgen = RandomQueryGenerator(graph, random.Random(1), profile)
        for _ in range(50):
            query = qgen.generate()
            text = print_query(query)
            assert print_query(parse_query(text)) == text

    def test_most_queries_execute(self):
        """Generated queries are mostly well-typed enough to run."""
        graph = GraphGenerator(seed=2).generate()
        profile = GDBMeterTester.profile
        qgen = RandomQueryGenerator(graph, random.Random(2), profile)
        executor = Executor(graph)
        succeeded = 0
        for _ in range(60):
            try:
                executor.execute(qgen.generate())
                succeeded += 1
            except Exception:
                pass
        assert succeeded > 30

    def test_profile_complexity_ordering(self):
        """Table 5's relative ordering must emerge from the profiles."""
        from repro.cypher.analysis import analyze

        def average_deps(profile, n=60):
            total = 0
            for seed in range(n):
                graph = GraphGenerator(seed=seed).generate()
                qgen = RandomQueryGenerator(graph, random.Random(seed), profile)
                total += analyze(qgen.generate()).dependencies
            return total / n

        assert average_deps(GRevTester.profile) > average_deps(
            GDBMeterTester.profile
        )
        assert average_deps(GDsmithTester.profile) > average_deps(
            GameraTester.profile
        )


class TestTLPPartitioning:
    def test_partitions_structure(self):
        query = parse_query("MATCH (n) WHERE n.x > 1 RETURN n.y AS y")
        parts = partition_query(query)
        assert parts is not None and len(parts) == 4
        texts = [print_query(p) for p in parts]
        assert "NOT" in texts[1]
        assert "IS NULL" in texts[2]
        assert "true" in texts[3]

    def test_no_where_no_partitions(self):
        assert partition_query(parse_query("MATCH (n) RETURN n")) is None

    def test_optional_match_not_partitioned(self):
        query = parse_query("OPTIONAL MATCH (n) WHERE n.x > 1 RETURN n")
        assert partition_query(query) is None

    @pytest.mark.parametrize("suffix", [
        "RETURN DISTINCT n.y AS y",
        "RETURN n.y AS y LIMIT 2",
        "RETURN count(*) AS c",
        "WITH n SKIP 1 RETURN n.y AS y",
    ])
    def test_unsound_downstream_blocks_partitioning(self, suffix):
        query = parse_query(f"MATCH (n) WHERE n.x > 1 {suffix}")
        assert partition_query(query) is None

    def test_relation_holds_on_reference_engine(self):
        """TLP must hold on a correct engine for every partitionable query."""
        graph = GraphGenerator(seed=4).generate()
        executor = Executor(graph)
        qgen = RandomQueryGenerator(
            graph, random.Random(4), GDBMeterTester.profile
        )
        checked = 0
        for _ in range(80):
            query = qgen.generate()
            parts = partition_query(query)
            if parts is None:
                continue
            try:
                results = [executor.execute(p) for p in parts]
            except Exception:
                continue
            union = ResultSet.union_all(results[:3])
            assert union.same_rows(results[3]), print_query(query)
            checked += 1
        assert checked > 10


class TestGameraRelations:
    def test_augmentation_applicability(self):
        labeled = parse_query("MATCH (n:L) RETURN n")
        unlabeled = parse_query("MATCH (n) RETURN n")
        with_call = parse_query("CALL db.labels() YIELD label RETURN label")
        assert augmentation_applicable(labeled)
        assert not augmentation_applicable(unlabeled)
        assert not augmentation_applicable(with_call)

    def test_direction_relaxation_superset_on_reference(self):
        graph = GraphGenerator(seed=5).generate()
        executor = Executor(graph)
        query = parse_query("MATCH (a:L0)-[r]->(b) RETURN a.id AS x, b.id AS y")
        relaxed = relax_one_direction(query)
        assert relaxed is not None
        base = executor.execute(query)
        superset = executor.execute(relaxed)
        assert base.is_sub_bag_of(superset)

    def test_relaxation_skips_unsound_queries(self):
        assert relax_one_direction(
            parse_query("MATCH (a)-[r]->(b) RETURN count(*) AS c")
        ) is None
        assert relax_one_direction(
            parse_query("OPTIONAL MATCH (a)-[r]->(b) RETURN a")
        ) is None


class TestGQTTransformations:
    def test_tautology_preserves_results(self):
        graph = GraphGenerator(seed=6).generate()
        executor = Executor(graph)
        query = parse_query("MATCH (n) WHERE n.id >= 2 RETURN n.id AS v")
        variant = add_tautology(query)
        assert executor.execute(query).same_rows(executor.execute(variant))

    def test_drop_where_superset(self):
        graph = GraphGenerator(seed=6).generate()
        executor = Executor(graph)
        query = parse_query("MATCH (n) WHERE n.id >= 2 RETURN n.id AS v")
        variant = drop_where(query)
        assert executor.execute(query).is_sub_bag_of(executor.execute(variant))

    def test_add_label_subset(self):
        graph = GraphGenerator(seed=6).generate()
        executor = Executor(graph)
        query = parse_query("MATCH (n) RETURN n.id AS v")
        variant = add_random_label(query, graph, random.Random(0))
        assert variant is not None
        assert executor.execute(variant).is_sub_bag_of(executor.execute(query))


class TestGRevRewrites:
    @pytest.mark.parametrize("rewrite", [
        reverse_patterns,
        double_negate_where,
        lambda q: permute_patterns(q, random.Random(3)),
    ])
    def test_rewrites_are_equivalent_on_reference(self, rewrite):
        graph = GraphGenerator(seed=7).generate()
        executor = Executor(graph)
        query = parse_query(
            "MATCH (a)-[r]->(b), (c)-[s]->(d) WHERE a.id < 5 AND c.id >= 0 "
            "RETURN a.id AS w, b.id AS x, c.id AS y, d.id AS z"
        )
        variant = rewrite(query)
        if variant is None:
            pytest.skip("rewrite not applicable")
        assert executor.execute(query).same_rows(executor.execute(variant))

    def test_limit_blocks_rewrites(self):
        query = parse_query("MATCH (a)-[r]->(b) RETURN a.id AS v LIMIT 1")
        assert reverse_patterns(query) is None


class TestNoFalsePositives:
    """Metamorphic testers must not raise alarms on correct engines."""

    @pytest.mark.parametrize("tester_class", [
        GDBMeterTester, GameraTester, GQTTester, GRevTester,
    ])
    def test_clean_engine_yields_no_reports(self, tester_class):
        tester = tester_class()
        engine = clean_engine("neo4j")
        result = tester.run(engine, budget_seconds=20.0, seed=5)
        assert result.reports == []
        assert result.queries_run > 10


class TestDetection:
    def test_gdsmith_detects_single_engine_fault(self):
        """A fault present in one engine only shows up as a discrepancy."""
        target = create_engine("falkordb", gate_scale=0.0)
        others = [clean_engine("neo4j"), clean_engine("memgraph")]
        tester = GDsmithTester(others)
        result = tester.run(target, budget_seconds=60.0, seed=8)
        assert any(r.fault_id for r in result.reports)

    def test_gdsmith_false_positives_on_clean_engines(self):
        """Even with all faults disabled, dialect differences produce
        false alarms (the paper's ~98% FP observation)."""
        target = clean_engine("neo4j")
        others = [clean_engine("memgraph"), clean_engine("falkordb")]
        tester = GDsmithTester(others)
        result = tester.run(target, budget_seconds=120.0, seed=9)
        assert result.false_positive_count > 0
        assert all(r.fault_id is None for r in result.reports)

    def test_session_crash_found_by_continuous_testers_only(self):
        """§5.4.4: long-session testers hit the accumulation crashes."""
        engine = create_engine("falkordb")
        engine.queries_since_restart = 50_000  # pretend a long session
        graph = GraphGenerator(seed=3).generate()
        engine.load_graph(graph, None, restart=False)
        tester = GDBMeterTester()
        rng = random.Random(0)
        from repro.core.runner import CampaignResult

        scratch = CampaignResult("GDBMeter", "falkordb")
        found_crash = False
        qgen = RandomQueryGenerator(engine.graph, rng, tester.profile)
        for _ in range(100):
            report = tester.check_query(engine, qgen.generate(), rng, scratch)
            if report is not None and report.kind == "error":
                found_crash = True
                break
            if engine.crashed:
                break
        assert found_crash

    def test_replay_interface(self):
        """§5.4.3: feeding a bug-triggering query to a baseline oracle."""
        engine = create_engine("falkordb", gate_scale=0.0)
        graph = GraphGenerator(seed=12).generate()
        engine.load_graph(graph, None)
        tester = GDBMeterTester()
        # A query in GDBMeter's shape that trips the UNWIND fault cannot be
        # partitioned for TLP (no MATCH-WHERE) -> missed.
        query = parse_query("UNWIND [1,2,3] AS x MATCH (n) RETURN x")
        assert tester.replay_flags_bug(engine, query, random.Random(0)) is False


class TestPaperScenarios:
    """Direct reproductions of the paper's §5.4.3 case studies."""

    def test_figure16_gdbmeter_blind_spot(self):
        """The Memgraph WITH+WHERE bug: every TLP partition is perturbed
        identically, so the union oracle passes on an incorrect result."""
        from repro.cypher.parser import parse_query
        from repro.engine.binding import ResultSet
        from repro.gdb.catalog import faults_for
        from repro.graph.generator import GraphGenerator

        engine = create_engine("memgraph", gate_scale=0.0)
        # Keep only the Figure 16 fault to avoid interference.
        engine.faults = [
            f for f in faults_for("memgraph") if f.fault_id == "memgraph-L2"
        ]
        graph = GraphGenerator(seed=21).generate()
        engine.load_graph(graph, None)

        # A query in the fault's trigger region: MATCH-WHERE + WITH chain
        # with enough cross-clause references.
        query = parse_query(
            "MATCH (n0)-[r0]->(n1) WHERE n0.id >= 0 "
            "WITH n0, r0, n1 WITH n0, r0, n1 RETURN r0.id AS a0"
        )
        actual = engine.execute(query)
        assert engine.last_fired_fault is not None
        assert len(actual) == 0  # incorrectly empty (the bug)

        # GDBMeter's TLP oracle passes: all partitions are empty too.
        tester = GDBMeterTester()
        assert tester.replay_flags_bug(engine, query, random.Random(0)) is False

        # GQS's ground-truth oracle catches it trivially: the reference
        # answer is non-empty.
        reference = ReferenceGDB()
        reference.load_graph(graph, None)
        correct = reference.execute(query)
        assert len(correct) > 0

    def test_figure17_row_loss_detected_by_ground_truth(self):
        """FalkorDB's UNWIND-before-MATCH bug: 3 rows expected, 1 returned."""
        from repro.cypher.parser import parse_query
        from repro.gdb.catalog import faults_for
        from repro.graph.generator import GraphGenerator

        engine = create_engine("falkordb", gate_scale=0.0)
        engine.faults = [
            f for f in faults_for("falkordb") if f.fault_id == "falkordb-L2"
        ]
        graph = GraphGenerator(seed=22).generate()
        engine.load_graph(graph, None)

        query = parse_query(
            "UNWIND [1, 2, 3] AS a0 MATCH (n) WHERE n.id = 0 RETURN a0"
        )
        actual = engine.execute(query)
        assert engine.last_fired_fault is not None
        assert len(actual) == 1  # only the first record fetched

        from repro.core.oracle import check_result
        from repro.engine.binding import ResultSet

        expected = ResultSet(["a0"], [(1,), (2,), (3,)])
        assert not check_result(expected, actual).passed
