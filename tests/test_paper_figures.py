"""End-to-end reproductions of the paper's figure bugs on the simulators."""

import pytest

from repro.core.oracle import check_result
from repro.cypher.parser import parse_query
from repro.gdb import ReferenceGDB, create_engine, faults_for
from repro.graph.generator import GraphGenerator


def engine_with_only(name, fault_id):
    engine = create_engine(name, gate_scale=0.0)
    engine.faults = [f for f in faults_for(name) if f.fault_id == fault_id]
    return engine


class TestFigure1:
    """FalkorDB: wrong value with undirected patterns + UNWIND + WITH."""

    QUERY = (
        "MATCH (n2)<-[r1]->(n0), (n3)-[r2]->(n4) "
        "UNWIND [n4.id, false] AS a1 "
        "WITH DISTINCT n2, n3, n4, n0 "
        "MATCH (n2)<-[r4]->(n0) "
        "RETURN n2.id AS a3 LIMIT 1"
    )

    def test_wrong_value_effect(self):
        graph = GraphGenerator(seed=31).generate()
        reference = ReferenceGDB()
        reference.load_graph(graph, None)
        try:
            correct = reference.execute(parse_query(self.QUERY))
        except Exception:
            pytest.skip("graph shape does not satisfy the figure pattern")
        if len(correct) == 0:
            pytest.skip("no match on this seed")

        engine = engine_with_only("falkordb", "falkordb-L1")
        engine.load_graph(graph, None)
        actual = engine.execute(parse_query(self.QUERY))
        assert engine.last_fired_fault is not None
        # Same shape, wrong value — exactly the Figure 1 symptom.
        assert len(actual) == len(correct)
        assert not check_result(correct, actual).passed


class TestFigure8:
    """Memgraph: empty result from Cartesian-product optimization."""

    # The paper's Figure 8 shape: two MATCH clauses separated by UNWINDs,
    # five clauses total, with a filter and a descending ORDER BY.
    QUERY = (
        "MATCH (n0)<-[r0]-(n1) WHERE n0.id >= 0 "
        "UNWIND [-1465465557] AS a0 "
        "MATCH (n4)<-[r2]-(n5) "
        "UNWIND [n0.id] AS a1 "
        "RETURN r2.id AS a2, n5.id AS a3 ORDER BY a3 DESC"
    )

    def test_empty_result_effect(self):
        graph = GraphGenerator(seed=32).generate()
        reference = ReferenceGDB()
        reference.load_graph(graph, None)
        correct = reference.execute(parse_query(self.QUERY))
        if len(correct) == 0:
            pytest.skip("no match on this seed")

        engine = engine_with_only("memgraph", "memgraph-L1")
        engine.load_graph(graph, None)
        actual = engine.execute(parse_query(self.QUERY))
        assert engine.last_fired_fault is not None
        assert len(actual) == 0
        assert not check_result(correct, actual).passed


class TestFigure9:
    """Memgraph: replace('', ...) hang — the exact query from the paper."""

    QUERY = "WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0"

    def test_reference_returns_original_string(self):
        graph = GraphGenerator(seed=33).generate()
        reference = ReferenceGDB()
        reference.load_graph(graph, None)
        result = reference.execute(parse_query(self.QUERY))
        assert result.rows == [("ts15G",)]

    def test_memgraph_hangs(self):
        from repro.engine.errors import ResourceExhausted

        graph = GraphGenerator(seed=33).generate()
        engine = engine_with_only("memgraph", "memgraph-O1")
        engine.load_graph(graph, None)
        with pytest.raises(ResourceExhausted):
            engine.execute(parse_query(self.QUERY))


class TestFigure17:
    """FalkorDB: UNWIND before MATCH fetches only the first record."""

    QUERY = "UNWIND [1,2,3] AS a0 MATCH (n2)-[r1]-(n3) WHERE r1.id = 0 RETURN a0"

    def test_row_loss(self):
        graph = GraphGenerator(seed=34).generate()
        reference = ReferenceGDB()
        reference.load_graph(graph, None)
        correct = reference.execute(parse_query(self.QUERY))
        if len(correct) == 0:
            pytest.skip("no relationship with id 0 on this seed")

        engine = engine_with_only("falkordb", "falkordb-L2")
        engine.load_graph(graph, None)
        actual = engine.execute(parse_query(self.QUERY))
        assert engine.last_fired_fault is not None
        assert len(actual) == 1
        assert len(correct) > 1
