"""Smoke tests: every example script must run to completion."""

import pathlib
import subprocess
import sys


EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def run_example(path, *args):
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


def test_quickstart():
    proc = run_example(
        next(p for p in EXAMPLES if p.name == "quickstart.py"), "7"
    )
    assert proc.returncode == 0, proc.stderr
    assert "synthesized query" in proc.stdout
    assert "ground truth" in proc.stdout


def test_movie_graph():
    proc = run_example(next(p for p in EXAMPLES if p.name == "movie_graph.py"))
    assert proc.returncode == 0, proc.stderr
    assert "Notebook" in proc.stdout
    assert "same expected result set" in proc.stdout


def test_bug_hunt():
    proc = run_example(
        next(p for p in EXAMPLES if p.name == "bug_hunt.py"),
        "falkordb", "1.5",
    )
    assert proc.returncode == 0, proc.stderr
    assert "distinct bugs" in proc.stdout
    assert "0 false positives" in proc.stdout


def test_compare_testers():
    proc = run_example(
        next(p for p in EXAMPLES if p.name == "compare_testers.py"),
        "falkordb", "0.6",
    )
    assert proc.returncode == 0, proc.stderr
    assert "GQS" in proc.stdout
    assert "GDsmith" in proc.stdout
