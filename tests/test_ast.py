"""Tests for AST node helpers (depth, variables, walk_expressions)."""

import pytest

from repro.cypher import ast
from repro.cypher.parser import parse_expression, parse_query


class TestDepth:
    def test_leaf_depth(self):
        assert ast.Literal(1).depth() == 1
        assert ast.Variable("x").depth() == 1

    def test_nested_depth(self):
        expr = parse_expression("abs(1 + 2)")
        assert expr.depth() == 3

    def test_case_depth_counts_arms(self):
        expr = parse_expression("CASE WHEN abs(1) = 1 THEN 2 ELSE 3 END")
        assert expr.depth() == 4  # case -> binary -> abs -> literal

    def test_slice_depth(self):
        expr = parse_expression("[1,2,3][0..abs(2)]")
        assert expr.depth() >= 3


class TestVariables:
    def test_collects_all_occurrences(self):
        expr = parse_expression("n.x + m.y + n.z")
        assert sorted(expr.variables()) == ["m", "n", "n"]

    def test_none_in_literals(self):
        assert list(parse_expression("1 + 'a'").variables()) == []

    def test_pattern_variables(self):
        query = parse_query("MATCH (a)-[r]->(b), (c) RETURN 1 AS x")
        pattern_vars = []
        for pattern in query.clauses[0].patterns:
            pattern_vars.extend(pattern.variables())
        assert pattern_vars == ["a", "b", "r", "c"]


class TestValidation:
    def test_query_requires_clauses(self):
        with pytest.raises(ValueError):
            ast.Query(())

    def test_path_pattern_arity(self):
        with pytest.raises(ValueError):
            ast.PathPattern((ast.NodePattern("a"),),
                            (ast.RelationshipPattern("r"),))

    def test_relationship_direction_validated(self):
        with pytest.raises(ValueError):
            ast.RelationshipPattern("r", (), "sideways")


class TestProjectionItemNames:
    def test_alias_wins(self):
        item = ast.ProjectionItem(ast.Variable("n"), "alias")
        assert item.output_name() == "alias"

    def test_bare_variable_name(self):
        item = ast.ProjectionItem(ast.Variable("n"))
        assert item.output_name() == "n"

    def test_expression_renders(self):
        item = ast.ProjectionItem(ast.PropertyAccess(ast.Variable("n"), "x"))
        assert item.output_name() == "n.x"


class TestWalkExpressions:
    def test_match_yields_properties_and_where(self):
        query = parse_query("MATCH (a {id: 1}) WHERE a.x = 2 RETURN 1 AS c")
        exprs = list(ast.walk_expressions(query.clauses[0]))
        assert len(exprs) == 2  # the property map and the WHERE

    def test_with_yields_everything(self):
        query = parse_query(
            "MATCH (a) WITH a.x AS v ORDER BY v SKIP 1 LIMIT 2 WHERE v > 0 "
            "RETURN v"
        )
        with_clause = query.clauses[1]
        exprs = list(ast.walk_expressions(with_clause))
        # item, order key, skip, limit, where.
        assert len(exprs) == 5

    def test_write_clauses_yield_expressions(self):
        query = parse_query("MATCH (n) SET n.x = n.y + 1")
        exprs = list(ast.walk_expressions(query.clauses[1]))
        assert len(exprs) == 1
        query = parse_query("MATCH (n) DELETE n")
        exprs = list(ast.walk_expressions(query.clauses[1]))
        assert exprs == [ast.Variable("n")]
        query = parse_query("CREATE (n {a: 1})-[r:T {b: 2}]->(m)")
        exprs = list(ast.walk_expressions(query.clauses[0]))
        assert len(exprs) == 2

    def test_call_yields_arguments(self):
        query = parse_query("CALL db.labels() YIELD label RETURN label")
        assert list(ast.walk_expressions(query.clauses[0])) == []
