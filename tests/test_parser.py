"""Tests for the Cypher parser (including print→parse round trips)."""

import pytest

from repro.cypher import ast
from repro.cypher.parser import ParseError, parse_expression, parse_query
from repro.cypher.printer import print_query


class TestExpressions:
    def test_literals(self):
        assert parse_expression("42") == ast.Literal(42)
        assert parse_expression("4.5") == ast.Literal(4.5)
        assert parse_expression("'hi'") == ast.Literal("hi")
        assert parse_expression("true") == ast.Literal(True)
        assert parse_expression("null") == ast.Literal(None)

    def test_negative_literal_folded(self):
        assert parse_expression("-7") == ast.Literal(-7)
        assert parse_expression("-7.5") == ast.Literal(-7.5)

    def test_property_access(self):
        expr = parse_expression("n.k1")
        assert expr == ast.PropertyAccess(ast.Variable("n"), "k1")

    def test_chained_property_access(self):
        expr = parse_expression("n.a.b")
        assert expr == ast.PropertyAccess(
            ast.PropertyAccess(ast.Variable("n"), "a"), "b"
        )

    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.Binary(
            "+", ast.Literal(1), ast.Binary("*", ast.Literal(2), ast.Literal(3))
        )

    def test_power_right_associative(self):
        expr = parse_expression("2 ^ 3 ^ 2")
        assert expr == ast.Binary(
            "^", ast.Literal(2), ast.Binary("^", ast.Literal(3), ast.Literal(2))
        )

    def test_logic_precedence(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.Binary) and expr.op == "OR"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a AND b")
        assert expr.op == "AND"
        assert isinstance(expr.left, ast.Unary)

    def test_string_predicates(self):
        for op in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
            expr = parse_expression(f"'abc' {op} 'a'")
            assert isinstance(expr, ast.Binary) and expr.op == op

    def test_is_null(self):
        expr = parse_expression("n.k IS NULL")
        assert expr == ast.IsNull(ast.PropertyAccess(ast.Variable("n"), "k"))
        expr = parse_expression("n.k IS NOT NULL")
        assert expr.negated

    def test_in_operator(self):
        expr = parse_expression("1 IN [1, 2]")
        assert expr.op == "IN"

    def test_function_call(self):
        expr = parse_expression("left('abc', 2)")
        assert expr == ast.FunctionCall(
            "left", (ast.Literal("abc"), ast.Literal(2))
        )

    def test_count_star(self):
        assert parse_expression("count(*)") == ast.CountStar()

    def test_distinct_aggregate(self):
        expr = parse_expression("collect(DISTINCT x)")
        assert expr.distinct

    def test_list_literal_index_slice(self):
        assert parse_expression("[1,2,3]") == ast.ListLiteral(
            (ast.Literal(1), ast.Literal(2), ast.Literal(3))
        )
        index = parse_expression("x[0]")
        assert isinstance(index, ast.ListIndex)
        sliced = parse_expression("x[1..2]")
        assert isinstance(sliced, ast.ListSlice)
        open_slice = parse_expression("x[..2]")
        assert open_slice.start is None

    def test_map_literal(self):
        expr = parse_expression("{a: 1, b: 'x'}")
        assert isinstance(expr, ast.MapLiteral)
        assert dict((k, v.value) for k, v in expr.items) == {"a": 1, "b": "x"}

    def test_case_generic(self):
        expr = parse_expression("CASE WHEN 1 < 2 THEN 'a' ELSE 'b' END")
        assert isinstance(expr, ast.CaseExpression)
        assert expr.subject is None
        assert expr.default == ast.Literal("b")

    def test_case_simple(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        assert expr.subject == ast.Variable("x")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_labels_predicate(self):
        expr = parse_expression("(n:L1:L2)")
        assert expr == ast.LabelsPredicate(ast.Variable("n"), ("L1", "L2"))

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 2")


class TestClauses:
    def test_simple_match_return(self):
        query = parse_query("MATCH (n) RETURN n")
        assert isinstance(query.clauses[0], ast.Match)
        assert isinstance(query.clauses[1], ast.Return)

    def test_optional_match(self):
        query = parse_query("OPTIONAL MATCH (n) RETURN n")
        assert query.clauses[0].optional

    def test_match_where(self):
        query = parse_query("MATCH (n) WHERE n.x = 1 RETURN n")
        assert query.clauses[0].where is not None

    def test_multiple_patterns(self):
        query = parse_query("MATCH (a)-[r]->(b), (c) RETURN a")
        assert len(query.clauses[0].patterns) == 2

    def test_relationship_directions(self):
        out_q = parse_query("MATCH (a)-[r]->(b) RETURN a")
        in_q = parse_query("MATCH (a)<-[r]-(b) RETURN a")
        both_q = parse_query("MATCH (a)-[r]-(b) RETURN a")
        weird = parse_query("MATCH (a)<-[r]->(b) RETURN a")  # FalkorDB style
        get = lambda q: q.clauses[0].patterns[0].relationships[0].direction
        assert get(out_q) == ast.OUT
        assert get(in_q) == ast.IN
        assert get(both_q) == ast.BOTH
        assert get(weird) == ast.BOTH

    def test_bare_arrows(self):
        query = parse_query("MATCH (a)-->(b)<--(c) RETURN a")
        rels = query.clauses[0].patterns[0].relationships
        assert rels[0].direction == ast.OUT
        assert rels[1].direction == ast.IN

    def test_relationship_types_alternation(self):
        query = parse_query("MATCH (a)-[r:T1|T2]->(b) RETURN r")
        assert query.clauses[0].patterns[0].relationships[0].types == ("T1", "T2")

    def test_node_properties_inline(self):
        query = parse_query("MATCH (a {id: 3}) RETURN a")
        node = query.clauses[0].patterns[0].nodes[0]
        assert node.properties is not None

    def test_unwind(self):
        query = parse_query("UNWIND [1,2] AS x RETURN x")
        assert isinstance(query.clauses[0], ast.Unwind)
        assert query.clauses[0].alias == "x"

    def test_with_full(self):
        query = parse_query(
            "MATCH (n) WITH DISTINCT n.x AS x ORDER BY x DESC SKIP 1 LIMIT 2 "
            "WHERE x > 0 RETURN x"
        )
        with_clause = query.clauses[1]
        assert with_clause.distinct
        assert with_clause.order_by[0].descending
        assert with_clause.skip == ast.Literal(1)
        assert with_clause.limit == ast.Literal(2)
        assert with_clause.where is not None

    def test_return_order_by_asc_default(self):
        query = parse_query("MATCH (n) RETURN n.x ORDER BY n.x ASC")
        assert not query.clauses[1].order_by[0].descending

    def test_union(self):
        query = parse_query("RETURN 1 AS x UNION RETURN 2 AS x")
        assert isinstance(query, ast.UnionQuery)
        assert not query.all

    def test_union_all_chain(self):
        query = parse_query(
            "RETURN 1 AS x UNION ALL RETURN 2 AS x UNION RETURN 3 AS x"
        )
        assert isinstance(query, ast.UnionQuery)
        assert not query.all
        assert isinstance(query.left, ast.UnionQuery)
        assert query.left.all

    def test_call_with_yield(self):
        query = parse_query("CALL db.labels() YIELD label RETURN label")
        call = query.clauses[0]
        assert call.procedure == "db.labels"
        assert call.yield_items == (("label", None),)

    def test_call_yield_alias(self):
        query = parse_query("CALL db.labels() YIELD label AS l RETURN l")
        assert query.clauses[0].yield_items == (("label", "l"),)

    def test_create(self):
        query = parse_query("CREATE (n:L {id: 1})-[r:T]->(m)")
        assert isinstance(query.clauses[0], ast.Create)

    def test_set(self):
        query = parse_query("MATCH (n) SET n.x = 1, n.y = 2")
        assert len(query.clauses[1].items) == 2

    def test_delete_and_detach(self):
        plain = parse_query("MATCH (n) DELETE n")
        detach = parse_query("MATCH (n) DETACH DELETE n")
        assert not plain.clauses[1].detach
        assert detach.clauses[1].detach

    def test_remove(self):
        query = parse_query("MATCH (n) REMOVE n.x, n:L")
        items = query.clauses[1].items
        assert items[0].key == "x"
        assert items[1].label == "L"

    def test_merge(self):
        query = parse_query("MERGE (n:L {id: 1})")
        assert isinstance(query.clauses[0], ast.Merge)

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_query("")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("FOO BAR")


PAPER_QUERIES = [
    # Figure 1 (FalkorDB bug).
    "MATCH (n2)<-[r1]->(n0), (n3)-[r2]->(n4)-[r3]->(n5) WHERE r1.id=13 "
    "UNWIND [n5.k2 <> r3.id, false] as a1 "
    "WITH DISTINCT n2, r3, n3, n4, n5, endNode(r1) as a2, n0 "
    "MATCH (n2)<-[r4:t10]->(n0), (n3)-[r5]->(n4)-[r6]->(n5) "
    "WHERE (((r6.k85)+(n2.k11)) ENDS WITH 'q11cZH6h') AND "
    "((n2.k9) = -1982025281) AND (n5.k2<=-881779936) "
    "RETURN n2.id as a3, r6.id as a4",
    # Figure 9 (Memgraph hang).
    "WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0",
    # Figure 17 (FalkorDB UNWIND bug).
    "UNWIND [1,2,3] AS a0 MATCH (n2 :L12)-[r1]-(n3) "
    "WHERE (((r1.id) = 13) AND true) RETURN a0",
    # Figure 2 second query.
    "MATCH (p :USER)-[r :LIKE]->(m :MOVIE) WHERE p.name = 'Alice' AND "
    "r.rating >= 8 UNWIND m.genre AS LikedGenre "
    "WITH DISTINCT m.name AS MovieName, m, LikedGenre "
    "RETURN MovieName, m.year",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_paper_queries_round_trip(self, text):
        tree = parse_query(text)
        printed = print_query(tree)
        reparsed = parse_query(printed)
        assert print_query(reparsed) == printed

    def test_round_trip_is_fixpoint(self):
        text = "MATCH (a:L1 {x: 1})-[r:T1|T2]-(b) WHERE a.y IS NOT NULL " \
               "RETURN DISTINCT a.x AS v ORDER BY v DESC LIMIT 3"
        once = print_query(parse_query(text))
        twice = print_query(parse_query(once))
        assert once == twice
