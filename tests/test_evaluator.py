"""Tests for expression evaluation semantics."""

import math

import pytest

from repro.cypher.parser import parse_expression
from repro.engine.errors import CypherRuntimeError, CypherTypeError
from repro.engine.evaluator import Evaluator, has_aggregate
from repro.graph.model import Node, PropertyGraph


@pytest.fixture
def evaluator():
    graph = PropertyGraph()
    graph.add_node(["L"], {"id": 0, "x": 5, "name": "zero"})
    graph.add_node(["L"], {"id": 1})
    graph.add_relationship(0, 1, "T", {"id": 0, "w": 2.5})
    return Evaluator(graph)


def ev(evaluator, text, **env):
    return evaluator.evaluate(parse_expression(text), env)


class TestArithmetic:
    def test_integer_arithmetic(self, evaluator):
        assert ev(evaluator, "2 + 3 * 4") == 14
        assert ev(evaluator, "2 - 5") == -3

    def test_integer_division_truncates_toward_zero(self, evaluator):
        assert ev(evaluator, "7 / 2") == 3
        assert ev(evaluator, "-7 / 2") == -3  # not -4: Cypher truncates

    def test_integer_division_by_zero_raises(self, evaluator):
        with pytest.raises(CypherRuntimeError):
            ev(evaluator, "1 / 0")

    def test_float_division_by_zero_is_infinite(self, evaluator):
        assert ev(evaluator, "1.0 / 0.0") == float("inf")
        assert ev(evaluator, "-1.0 / 0.0") == float("-inf")
        assert math.isnan(ev(evaluator, "0.0 / 0.0"))

    def test_modulo_keeps_dividend_sign(self, evaluator):
        # Java/Neo4j semantics: -5 % 3 == -2 (Python would give 1).
        assert ev(evaluator, "-5 % 3") == -2
        assert ev(evaluator, "5 % -3") == 2
        assert ev(evaluator, "5 % 3") == 2

    def test_integer_modulo_by_zero_raises(self, evaluator):
        with pytest.raises(CypherRuntimeError):
            ev(evaluator, "5 % 0")

    def test_power_always_float(self, evaluator):
        assert ev(evaluator, "2 ^ 3") == 8.0
        assert isinstance(ev(evaluator, "2 ^ 3"), float)

    def test_int64_overflow_raises(self, evaluator):
        with pytest.raises(CypherRuntimeError):
            ev(evaluator, "9223372036854775807 + 1")
        with pytest.raises(CypherRuntimeError):
            ev(evaluator, "9223372036854775807 * 2")

    def test_unary_minus(self, evaluator):
        assert ev(evaluator, "-(3 + 4)") == -7
        with pytest.raises(CypherTypeError):
            ev(evaluator, "-'a'")

    def test_string_concatenation(self, evaluator):
        assert ev(evaluator, "'a' + 'b'") == "ab"

    def test_list_concatenation(self, evaluator):
        assert ev(evaluator, "[1] + [2]") == [1, 2]
        assert ev(evaluator, "[1] + 2") == [1, 2]
        assert ev(evaluator, "1 + [2]") == [1, 2]

    def test_mixed_type_arithmetic_raises(self, evaluator):
        with pytest.raises(CypherTypeError):
            ev(evaluator, "'a' * 2")
        with pytest.raises(CypherTypeError):
            ev(evaluator, "true + 1")

    def test_null_propagation(self, evaluator):
        assert ev(evaluator, "null + 1") is None
        assert ev(evaluator, "1 * null") is None
        assert ev(evaluator, "null ^ 2") is None


class TestComparisons:
    def test_basic(self, evaluator):
        assert ev(evaluator, "1 < 2") is True
        assert ev(evaluator, "2 <= 1") is False
        assert ev(evaluator, "1 = 1.0") is True
        assert ev(evaluator, "1 <> 2") is True

    def test_incomparable_is_null(self, evaluator):
        assert ev(evaluator, "1 < 'a'") is None
        assert ev(evaluator, "true > 0") is None

    def test_null_comparisons(self, evaluator):
        assert ev(evaluator, "null = null") is None
        assert ev(evaluator, "null <> 1") is None

    def test_in_membership(self, evaluator):
        assert ev(evaluator, "2 IN [1, 2, 3]") is True
        assert ev(evaluator, "9 IN [1, 2]") is False
        assert ev(evaluator, "9 IN [1, null]") is None
        assert ev(evaluator, "1 IN [1, null]") is True
        assert ev(evaluator, "null IN []") is False
        assert ev(evaluator, "null IN [1]") is None
        assert ev(evaluator, "1 IN null") is None

    def test_in_requires_list(self, evaluator):
        with pytest.raises(CypherTypeError):
            ev(evaluator, "1 IN 2")

    def test_string_predicates(self, evaluator):
        assert ev(evaluator, "'hello' STARTS WITH 'he'") is True
        assert ev(evaluator, "'hello' ENDS WITH 'lo'") is True
        assert ev(evaluator, "'hello' CONTAINS 'ell'") is True
        assert ev(evaluator, "'hello' CONTAINS 'x'") is False
        assert ev(evaluator, "'a' STARTS WITH null") is None
        assert ev(evaluator, "1 CONTAINS 'x'") is None

    def test_regex(self, evaluator):
        assert ev(evaluator, "'abc' =~ 'a.c'") is True
        assert ev(evaluator, "'abc' =~ 'a'") is False  # full match
        assert ev(evaluator, "null =~ 'a'") is None


class TestLogic:
    def test_connectives(self, evaluator):
        assert ev(evaluator, "true AND null") is None
        assert ev(evaluator, "false AND null") is False
        assert ev(evaluator, "true OR null") is True
        assert ev(evaluator, "false XOR true") is True
        assert ev(evaluator, "NOT null") is None

    def test_non_boolean_predicate_raises(self, evaluator):
        with pytest.raises(CypherTypeError):
            ev(evaluator, "1 AND true")


class TestAccessors:
    def test_property_access(self, evaluator):
        node = evaluator.graph.node(0)
        assert ev(evaluator, "n.x", n=node) == 5
        assert ev(evaluator, "n.missing", n=node) is None
        assert ev(evaluator, "n.x", n=None) is None

    def test_property_access_on_map(self, evaluator):
        assert ev(evaluator, "m.a", m={"a": 1}) == 1

    def test_property_access_on_scalar_raises(self, evaluator):
        with pytest.raises(CypherTypeError):
            ev(evaluator, "x.a", x=5)

    def test_undefined_variable_raises(self, evaluator):
        with pytest.raises(CypherRuntimeError):
            ev(evaluator, "ghost")

    def test_list_index(self, evaluator):
        assert ev(evaluator, "[1,2,3][0]") == 1
        assert ev(evaluator, "[1,2,3][-1]") == 3
        assert ev(evaluator, "[1,2,3][9]") is None
        assert ev(evaluator, "[1,2][null]") is None

    def test_map_index(self, evaluator):
        assert ev(evaluator, "{a: 1}['a']") == 1

    def test_slices(self, evaluator):
        assert ev(evaluator, "[1,2,3,4][1..3]") == [2, 3]
        assert ev(evaluator, "[1,2,3][..2]") == [1, 2]
        assert ev(evaluator, "'abcd'[1..3]") == "bc"

    def test_is_null(self, evaluator):
        assert ev(evaluator, "null IS NULL") is True
        assert ev(evaluator, "1 IS NOT NULL") is True


class TestFunctionsInExpressions:
    def test_node_ref_resolution(self, evaluator):
        """startNode/endNode must resolve to actual graph nodes."""
        rel = evaluator.graph.relationship(0)
        start = ev(evaluator, "startNode(r)", r=rel)
        assert isinstance(start, Node) and start.id == 0
        end = ev(evaluator, "endNode(r)", r=rel)
        assert end.id == 1

    def test_nested_node_ref(self, evaluator):
        rel = evaluator.graph.relationship(0)
        assert ev(evaluator, "id(endNode(r))", r=rel) == 1
        assert ev(evaluator, "endNode(r).id", r=rel) == 1

    def test_aggregate_outside_projection_raises(self, evaluator):
        with pytest.raises(CypherRuntimeError):
            ev(evaluator, "count(x)", x=1)


class TestCase:
    def test_generic_case(self, evaluator):
        assert ev(evaluator, "CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END") == "yes"
        assert ev(evaluator, "CASE WHEN false THEN 1 END") is None

    def test_simple_case(self, evaluator):
        assert ev(evaluator, "CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END") == "b"

    def test_case_null_condition_skipped(self, evaluator):
        assert ev(evaluator, "CASE WHEN null THEN 1 ELSE 2 END") == 2


class TestHasAggregate:
    def test_detection(self):
        assert has_aggregate(parse_expression("count(*)"))
        assert has_aggregate(parse_expression("1 + sum(x)"))
        assert not has_aggregate(parse_expression("abs(x) + 1"))
