"""Tests for the synthesis-plan seed: constraints of Examples 3.1/3.2."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ground_truth import build_constraint_graph, select_ground_truth
from repro.core.operations import (
    MATCH_LIKE,
    PROJECTION_LIKE,
    UNWIND_LIKE,
    OpKind,
    Operation,
)
from repro.graph.generator import GraphGenerator


def seed_plan(seed, **kwargs):
    graph = GraphGenerator(seed=seed).generate()
    rng = random.Random(seed)
    gt = select_ground_truth(graph, rng)
    return graph, gt, build_constraint_graph(graph, gt, rng, **kwargs)


class TestClauseFamilies:
    def test_table1_mapping(self):
        """The Table 1 operation → clause mapping."""
        assert Operation(OpKind.ELEMENT_ADD, "n0").clause_kinds == MATCH_LIKE
        assert Operation(OpKind.ELEMENT_REMOVE, "n0").clause_kinds == PROJECTION_LIKE
        assert Operation(OpKind.ALIAS_ADD, "a0").clause_kinds == PROJECTION_LIKE
        assert Operation(OpKind.ALIAS_REMOVE, "a0").clause_kinds == PROJECTION_LIKE
        assert Operation(OpKind.LIST_EXPAND, "a0").clause_kinds == UNWIND_LIKE
        assert Operation(OpKind.LIST_TRUNCATE, "a0").clause_kinds == PROJECTION_LIKE
        assert Operation(OpKind.PROP_ACCESS, "a0").clause_kinds == PROJECTION_LIKE

    def test_operation_str_forms(self):
        add = Operation(OpKind.ELEMENT_ADD, "n1")
        access = Operation(OpKind.PROP_ACCESS, "a0", property_name="name")
        assert str(add) == "n1+"
        assert "name" in str(access)


class TestExample32Constraints:
    """The eight-constraint structure of the paper's Example 3.2."""

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_access_strictly_after_add(self, seed):
        graph, gt, plan = seed_plan(seed)
        cg = plan.graph
        adds = {op.element: op for op in cg.operations
                if op.kind == OpKind.ELEMENT_ADD}
        for op in cg.operations:
            if op.kind == OpKind.PROP_ACCESS:
                # E+ ≺ (E.p)+ : the add is a predecessor of the access.
                assert adds[op.element] in cg.predecessors(op)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_removal_weakly_after_access(self, seed):
        graph, gt, plan = seed_plan(seed)
        cg = plan.graph
        removes = {op.element: op for op in cg.operations
                   if op.kind == OpKind.ELEMENT_REMOVE}
        for op in cg.operations:
            if op.kind == OpKind.PROP_ACCESS:
                remove = removes[op.element]
                # (E.p)+ ⪯ E- : weak edge recorded both ways.
                assert remove in cg.weak_related[op]
                assert op in cg.predecessors(remove)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_alias_add_strictly_before_remove(self, seed):
        graph, gt, plan = seed_plan(seed)
        cg = plan.graph
        alias_adds = {op.variable: op for op in cg.operations
                      if op.kind == OpKind.ALIAS_ADD}
        for op in cg.operations:
            if op.kind == OpKind.ALIAS_REMOVE:
                assert alias_adds[op.variable] in cg.predecessors(op)

    def test_shared_element_gets_single_add(self):
        """Two expected properties on one element share its E+/E- pair."""
        for seed in range(60):
            graph, gt, plan = seed_plan(seed)
            elements = [
                (e.key.element_kind, e.key.element_id) for e in gt.entries
            ]
            if len(set(elements)) < len(elements):
                adds = [op for op in plan.graph.operations
                        if op.kind == OpKind.ELEMENT_ADD and op.essential]
                add_elements = [op.element for op in adds]
                assert len(add_elements) == len(set(add_elements))
                return
        pytest.skip("no seed with a shared ground-truth element in range")


class TestSupplementaryKnobs:
    def test_zero_extras_gives_essential_only(self):
        graph, gt, plan = seed_plan(5, extra_elements=0, extra_aliases=0,
                                    extra_lists=0)
        assert not plan.supplementary_aliases
        assert not plan.list_aliases
        for op in plan.graph.operations:
            assert op.kind in (
                OpKind.ELEMENT_ADD, OpKind.ELEMENT_REMOVE, OpKind.PROP_ACCESS
            )

    def test_alias_namespace_continues_after_ground_truth(self):
        graph, gt, plan = seed_plan(6, extra_aliases=3)
        for alias in plan.supplementary_aliases:
            assert int(alias[1:]) >= len(gt)

    def test_alias_sources_are_element_variables(self):
        graph, gt, plan = seed_plan(7, extra_aliases=4)
        for alias, source in plan.alias_sources.items():
            if source is not None:
                assert source in plan.element_vars.values()
