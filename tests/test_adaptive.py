"""Tests for coverage-guided adaptive synthesis (repro.runtime.adapt).

The acceptance bar for the feedback loop mirrors the runtime's general
determinism contract: the same cell seed must produce byte-identical event
streams and weight trajectories for any ``--jobs`` value, and a campaign
with adaptation *off* must be byte-identical to the blind baseline — the
policy-object widening of ``SessionPolicy`` may not perturb a single RNG
draw.
"""

import json
import random
import warnings

import pytest

from repro.core.reporting import campaign_to_dict, load_event_stream
from repro.core.runner import GQSTester
from repro.experiments.campaign import run_campaign_grid, run_tool_campaign
from repro.gdb import create_engine
from repro.runtime import (
    ADAPTIVE_STRATEGIES,
    AdaptivePolicy,
    AdaptiveSchedule,
    CampaignKernel,
    EventLog,
    FeatureArm,
    SessionPolicy,
    WeightProfile,
    attach_adaptive_policy,
    default_arms,
    merge_adaptation_snapshots,
)
from repro.runtime.adapt import derive_policy_seed

GATE = 0.05
BUDGET = 6.0


def grid_fingerprint(results):
    return json.dumps(
        {"|".join(map(str, key)): campaign_to_dict(result)
         for key, result in results.items()},
        sort_keys=True,
    )


class TestWeightProfile:
    def test_build_sorts_entries_for_deterministic_hashing(self):
        a = WeightProfile.build(scales={"b": 2.0, "a": 3.0})
        b = WeightProfile.build(scales={"a": 3.0, "b": 2.0})
        assert a == b and hash(a) == hash(b)
        assert a.scales == (("a", 3.0), ("b", 2.0))

    def test_merge_multiplies_scales_and_adds_bumps(self):
        merged = WeightProfile.merge([
            WeightProfile.build(scales={"p": 2.0}, bumps={"n": 1}),
            WeightProfile.build(scales={"p": 3.0}, bumps={"n": 2}),
        ])
        assert dict(merged.scales) == {"p": 6.0}
        assert dict(merged.bumps) == {"n": 3}

    def test_apply_synthesizer_caps_probabilities_and_copies(self):
        from repro.core.synthesizer import SynthesizerConfig

        config = SynthesizerConfig()
        profile = WeightProfile.build(
            scales={"union_probability": 1000.0},
            bumps={"expression_depth": 2},
        )
        out = profile.apply_synthesizer(config)
        assert out.union_probability == 0.95
        assert out.expression_depth == config.expression_depth + 2
        # The caller's config is never mutated.
        assert config.union_probability < 0.95

    def test_apply_generator_bumps_graph_knobs(self):
        from repro.graph.generator import GeneratorConfig

        config = GeneratorConfig(max_nodes=5, max_relationships=6)
        profile = WeightProfile.build(graph_bumps={"max_nodes": 4})
        assert profile.apply_generator(config).max_nodes == 9

    def test_unknown_knob_raises_instead_of_rotting(self):
        from repro.core.synthesizer import SynthesizerConfig

        profile = WeightProfile.build(scales={"renamed_probability": 2.0})
        with pytest.raises(AttributeError):
            profile.apply_synthesizer(SynthesizerConfig())

    def test_empty_profile_is_falsy(self):
        assert not WeightProfile()
        assert WeightProfile.build(bumps={"n": 1})


class TestPolicyAPI:
    def test_blind_policy_hooks_are_inert(self):
        policy = SessionPolicy.long_session()
        assert policy.adaptive is False
        assert policy.strategy is None
        policy.begin(7)
        assert policy.next_weights() is None
        policy.observe(None, None, [], novel=True, signature="sig")
        assert policy.snapshot() is None

    def test_keyword_construction_is_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert SessionPolicy(restart_per_graph=True).restart_per_graph
            assert not SessionPolicy.long_session().restart_per_graph
            assert SessionPolicy.restart_each_graph().restart_per_graph

    def test_positional_construction_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            policy = SessionPolicy(True)
        assert policy.restart_per_graph is True
        with pytest.raises(TypeError), pytest.warns(DeprecationWarning):
            SessionPolicy(True, False)

    def test_policy_equality_and_hash(self):
        assert SessionPolicy.long_session() == SessionPolicy.long_session()
        assert SessionPolicy.long_session() != SessionPolicy.restart_each_graph()
        assert hash(SessionPolicy.long_session()) == hash(SessionPolicy.long_session())
        # An adaptive policy never compares equal to a blind one.
        assert AdaptivePolicy("epsilon") != SessionPolicy.long_session()
        assert AdaptivePolicy("epsilon") == AdaptivePolicy("epsilon")
        assert AdaptivePolicy("epsilon") != AdaptivePolicy("ucb")

    def test_attach_preserves_declared_restart_behavior(self):
        tester = GQSTester()  # declares restart_each_graph
        policy = attach_adaptive_policy(tester, "ucb")
        assert tester.session is policy
        assert policy.adaptive is True
        assert policy.strategy == "ucb"
        assert policy.restart_per_graph is True

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown adaptive strategy"):
            AdaptiveSchedule("anneal")
        assert ADAPTIVE_STRATEGIES == ("epsilon", "ucb")


class TestScheduleDeterminism:
    def _drive(self, strategy, seed, rounds=30):
        schedule = AdaptiveSchedule(strategy)
        schedule.begin(seed)
        rng = random.Random(99)  # feedback stream, fixed across runs
        tags = [arm.name for arm in schedule.arms]
        for _ in range(rounds):
            schedule.next_weights()
            for _ in range(3):
                arm = schedule.arms[rng.randrange(len(schedule.arms))]
                schedule.observe(sorted(arm.tags)[:1], novel=rng.random() < 0.1)
        del tags
        return schedule.snapshot()

    def test_same_seed_same_trajectory(self):
        for strategy in ADAPTIVE_STRATEGIES:
            assert self._drive(strategy, 5) == self._drive(strategy, 5)

    def test_policy_rng_is_decorrelated_from_cell_seed(self):
        assert derive_policy_seed(0) != 0
        assert derive_policy_seed(0) != derive_policy_seed(1)
        # Pinned: a change here silently reshuffles every adaptive campaign.
        assert derive_policy_seed(0) == int.from_bytes(
            __import__("hashlib").sha256(b"adapt|0").digest()[:8], "big"
        )

    def test_ucb_draws_no_randomness(self):
        schedule = AdaptiveSchedule("ucb")
        schedule.begin(3)
        state = schedule._rng.getstate()
        for _ in range(10):
            schedule.next_weights()
        assert schedule._rng.getstate() == state

    def test_unexpressed_arms_are_probed_first(self):
        # UCB ranks pulls==0 arms infinitely urgent, ties by lowest index.
        schedule = AdaptiveSchedule("ucb", arms_per_round=2)
        schedule.begin(0)
        schedule.next_weights()
        assert schedule.history[0] == [
            schedule.arms[0].name, schedule.arms[1].name
        ]

    def test_reward_steers_exploitation(self):
        arms = (
            FeatureArm.build("cold", ["t:cold"], bumps={"extra_lists": 1}),
            FeatureArm.build("hot", ["t:hot"], bumps={"extra_lists": 2}),
        )
        schedule = AdaptiveSchedule("ucb", arms, arms_per_round=1)
        schedule.begin(0)
        for _ in range(20):
            schedule.observe(["t:hot"], novel=True)
            schedule.observe(["t:cold"], novel=False)
        schedule.next_weights()
        assert schedule.history[-1] == ["hot"]

    def test_begin_resets_all_state(self):
        schedule = AdaptiveSchedule("epsilon")
        schedule.begin(1)
        schedule.next_weights()
        schedule.observe(["clause:UNION"], novel=True)
        schedule.begin(1)
        snap = schedule.snapshot()
        assert snap["rounds"] == 0 and snap["observed"] == 0
        assert snap["novel"] == 0 and snap["history"] == []


class TestKernelIntegration:
    def _run(self, adaptive):
        log = EventLog()
        engine = create_engine("falkordb", gate_scale=GATE)
        tester = GQSTester()
        if adaptive:
            attach_adaptive_policy(tester, adaptive)
        result = CampaignKernel(events=log).run(
            tester, engine, BUDGET, seed=11
        )
        return result, log

    def test_adaptive_campaign_emits_adaptation_event(self):
        result, log = self._run("epsilon")
        (event,) = log.of_kind("adaptation")
        snap = event["snapshot"]
        assert snap["strategy"] == "epsilon"
        assert snap["observed"] == result.queries_run
        assert snap["rounds"] == len(snap["history"]) > 0
        assert set(snap["arms"]) == {arm.name for arm in default_arms()}

    def test_campaign_start_declares_strategy_only_when_adaptive(self):
        _, adaptive_log = self._run("ucb")
        (start,) = adaptive_log.of_kind("campaign_start")
        assert start["adaptive"] == "ucb"
        _, blind_log = self._run(None)
        (start,) = blind_log.of_kind("campaign_start")
        assert "adaptive" not in start
        assert blind_log.of_kind("adaptation") == []

    def test_adaptive_campaign_is_deterministic(self):
        first, first_log = self._run("epsilon")
        second, second_log = self._run("epsilon")
        assert campaign_to_dict(first) == campaign_to_dict(second)
        assert first_log.of_kind("adaptation") == second_log.of_kind("adaptation")

    def test_blind_run_matches_convenience_baseline(self):
        # Adaptation off: the widened policy API must reproduce the blind
        # kernel byte-for-byte, including through run_tool_campaign.
        direct = GQSTester().run(
            create_engine("falkordb", gate_scale=GATE), BUDGET, seed=11
        )
        via_campaign = run_tool_campaign(
            "GQS", "falkordb", budget_seconds=BUDGET, seed=11,
            gate_scale=GATE, adaptive=None,
        )
        assert campaign_to_dict(direct) == campaign_to_dict(via_campaign)

    def test_strategies_change_the_trajectory(self):
        _, eps_log = self._run("epsilon")
        _, ucb_log = self._run("ucb")
        (eps_event,) = eps_log.of_kind("adaptation")
        (ucb_event,) = ucb_log.of_kind("adaptation")
        assert eps_event["snapshot"]["history"] != ucb_event["snapshot"]["history"]


class TestGridDeterminism:
    def _grid(self, jobs, tmp_path, name, resume_path=None):
        log = tmp_path / f"{name}.jsonl"
        results = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0, 1), budget_seconds=BUDGET,
            gate_scale=GATE, jobs=jobs, events_path=log,
            adaptive="epsilon", resume_path=resume_path,
        )
        return results, load_event_stream(log)

    def test_jobs_1_and_jobs_2_byte_identical_with_adaptation(self, tmp_path):
        seq, seq_events = self._grid(1, tmp_path, "seq")
        par, par_events = self._grid(2, tmp_path, "par")
        assert grid_fingerprint(seq) == grid_fingerprint(par)
        # Weight trajectories (history) ride in the adaptation events.
        seq_adapt = [e for e in seq_events if e["event"] == "adaptation"]
        par_adapt = [e for e in par_events if e["event"] == "adaptation"]
        assert seq_adapt == par_adapt
        grid_rollups = [e for e in seq_adapt if e.get("scope") == "grid"]
        assert len(grid_rollups) == 1
        assert grid_rollups[0]["snapshot"]["cells"] == 2

    def test_adaptive_grid_resumes_deterministically(self, tmp_path):
        reference, ref_events = self._grid(1, tmp_path, "full")
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        cut = next(
            i for i, line in enumerate(lines)
            if json.loads(line)["event"] == "cell_complete"
        )
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[: cut + 1]) + "\n")
        resumed, resumed_events = self._grid(
            1, tmp_path, "resumed", resume_path=partial
        )
        assert grid_fingerprint(resumed) == grid_fingerprint(reference)
        ref_rollup = [e for e in ref_events
                      if e["event"] == "adaptation" and e.get("scope") == "grid"]
        res_rollup = [e for e in resumed_events
                      if e["event"] == "adaptation" and e.get("scope") == "grid"]
        assert ref_rollup == res_rollup

    def test_adaptation_changes_what_the_grid_finds(self, tmp_path):
        blind = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0,), budget_seconds=BUDGET,
            gate_scale=GATE,
        )
        adaptive, _ = self._grid(1, tmp_path, "adaptive-only")
        key = ("GQS", "falkordb", 0)
        assert campaign_to_dict(blind[key]) != campaign_to_dict(adaptive[key])


class TestMergeAndRender:
    def test_merge_is_order_insensitive(self):
        a = {"tester": "GQS", "engine": "neo4j", "seed": 0, "strategy": "epsilon",
             "rounds": 3, "observed": 9, "novel": 2,
             "arms": {"union": {"pulls": 4, "reward": 1, "selected": 2}}}
        b = {"tester": "GQS", "engine": "falkordb", "seed": 1, "strategy": "epsilon",
             "rounds": 2, "observed": 6, "novel": 1,
             "arms": {"union": {"pulls": 1, "reward": 0, "selected": 1},
                      "limit": {"pulls": 2, "reward": 1, "selected": 1}}}
        merged = merge_adaptation_snapshots([a, b])
        assert merged == merge_adaptation_snapshots([b, a])
        assert merged["cells"] == 2
        assert merged["rounds"] == 5 and merged["observed"] == 15
        assert merged["arms"]["union"] == {
            "pulls": 5, "reward": 1, "selected": 3
        }
        assert list(merged["arms"]) == sorted(merged["arms"])
        assert merged["strategies"] == ["epsilon"]

    def test_stats_render_gains_adaptation_section(self):
        from repro.obs import render_stats

        log = EventLog()
        engine = create_engine("falkordb", gate_scale=GATE)
        tester = GQSTester()
        attach_adaptive_policy(tester, "epsilon")
        CampaignKernel(events=log).run(tester, engine, BUDGET, seed=2)
        text = render_stats(log.events)
        assert "== adaptation ==" in text
        assert "strategy: epsilon" in text
        assert "union" in text

    def test_blind_stats_render_has_no_adaptation_section(self):
        from repro.obs import render_stats

        log = EventLog()
        CampaignKernel(events=log).run(
            GQSTester(), create_engine("falkordb", gate_scale=GATE),
            BUDGET, seed=2,
        )
        assert "== adaptation ==" not in render_stats(log.events)
