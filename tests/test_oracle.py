"""Tests for the ground-truth oracle and result-set comparison."""

import pytest

from repro.core.oracle import check_result
from repro.engine.binding import BindingTable, ResultSet


class TestResultSet:
    def test_bag_equality_order_insensitive(self):
        a = ResultSet(["x"], [(1,), (2,)])
        b = ResultSet(["x"], [(2,), (1,)])
        assert a.same_rows(b)

    def test_bag_equality_counts_multiplicity(self):
        a = ResultSet(["x"], [(1,), (1,)])
        b = ResultSet(["x"], [(1,)])
        assert not a.same_rows(b)

    def test_column_names_matter(self):
        a = ResultSet(["x"], [(1,)])
        b = ResultSet(["y"], [(1,)])
        assert not a.same_rows(b)

    def test_equivalence_semantics(self):
        a = ResultSet(["x"], [(None,), (float("nan"),)])
        b = ResultSet(["x"], [(float("nan"),), (None,)])
        assert a.same_rows(b)

    def test_int_float_equivalence(self):
        a = ResultSet(["x"], [(1,)])
        b = ResultSet(["x"], [(1.0,)])
        assert a.same_rows(b)

    def test_sub_bag(self):
        small = ResultSet(["x"], [(1,)])
        big = ResultSet(["x"], [(1,), (1,), (2,)])
        assert small.is_sub_bag_of(big)
        assert not big.is_sub_bag_of(small)

    def test_union_all(self):
        a = ResultSet(["x"], [(1,)])
        b = ResultSet(["x"], [(2,)])
        union = ResultSet.union_all([a, b])
        assert len(union) == 2

    def test_union_all_column_mismatch(self):
        with pytest.raises(ValueError):
            ResultSet.union_all([ResultSet(["x"], []), ResultSet(["y"], [])])

    def test_to_dicts(self):
        rs = ResultSet(["a", "b"], [(1, 2)])
        assert rs.to_dicts() == [{"a": 1, "b": 2}]


class TestBindingTable:
    def test_unit_table(self):
        table = BindingTable.unit()
        assert len(table) == 1
        assert table.rows == [{}]

    def test_distinct(self):
        table = BindingTable(["x"], [{"x": 1}, {"x": 1}, {"x": 2}])
        assert len(table.distinct()) == 2

    def test_distinct_null_and_nan(self):
        table = BindingTable(
            ["x"], [{"x": None}, {"x": None}, {"x": float("nan")},
                    {"x": float("nan")}]
        )
        assert len(table.distinct()) == 2

    def test_copy_is_independent(self):
        table = BindingTable(["x"], [{"x": 1}])
        clone = table.copy()
        clone.rows[0]["x"] = 99
        assert table.rows[0]["x"] == 1


class TestOracle:
    def test_passes_on_match(self):
        expected = ResultSet(["a0"], [(1,)])
        actual = ResultSet(["a0"], [(1,)])
        assert check_result(expected, actual).passed

    def test_column_mismatch(self):
        verdict = check_result(
            ResultSet(["a0"], [(1,)]), ResultSet(["a1"], [(1,)])
        )
        assert not verdict.passed
        assert "column" in verdict.reason

    def test_row_count_mismatch(self):
        verdict = check_result(
            ResultSet(["a0"], [(1,)]), ResultSet(["a0"], [(1,), (1,)])
        )
        assert not verdict.passed
        assert "row count" in verdict.reason

    def test_value_mismatch(self):
        verdict = check_result(
            ResultSet(["a0"], [(1,)]), ResultSet(["a0"], [(2,)])
        )
        assert not verdict.passed
        assert "values" in verdict.reason

    def test_detects_figure1_style_wrong_value(self):
        """The paper's Figure 1: {a3:1, a4:16} vs {a3:4, a4:16}."""
        expected = ResultSet(["a3", "a4"], [(1, 16)])
        actual = ResultSet(["a3", "a4"], [(4, 16)])
        assert not check_result(expected, actual).passed

    def test_detects_figure8_style_empty(self):
        expected = ResultSet(["a2", "a3", "a4"], [("0spkB", False, "SpqUzADY6")])
        actual = ResultSet(["a2", "a3", "a4"], [])
        assert not check_result(expected, actual).passed

    def test_multiplicity_checked(self):
        """Figure 7: six identical rows expected — five is a bug."""
        row = ("v6z5e", True)
        expected = ResultSet(["a3", "a4"], [row] * 6)
        actual = ResultSet(["a3", "a4"], [row] * 5)
        assert not check_result(expected, actual).passed

    def test_verdict_is_truthy(self):
        verdict = check_result(ResultSet([], []), ResultSet([], []))
        assert bool(verdict)
