"""Tests for the write clauses used by the graph initializer (§2.2, §4)."""

import pytest

from repro.cypher.parser import parse_query
from repro.engine.errors import CypherSyntaxError, CypherTypeError
from repro.engine.executor import Executor
from repro.graph.model import PropertyGraph


@pytest.fixture
def graph():
    return PropertyGraph()


def run(graph, text):
    return Executor(graph).execute(parse_query(text))


class TestCreate:
    def test_create_node(self, graph):
        run(graph, "CREATE (n:USER {name: 'Alice', id: 0})")
        assert graph.node_count == 1
        node = graph.node(0)
        assert node.labels == frozenset({"USER"})
        assert node.properties == {"name": "Alice", "id": 0}

    def test_create_path(self, graph):
        run(graph, "CREATE (a:X)-[r:T {w: 1}]->(b:Y)")
        assert graph.node_count == 2
        assert graph.relationship_count == 1
        rel = next(graph.relationships())
        assert rel.type == "T"
        assert rel.properties == {"w": 1}

    def test_create_reversed_direction(self, graph):
        run(graph, "CREATE (a:X)<-[r:T]-(b:Y)")
        rel = next(graph.relationships())
        assert graph.node(rel.start).labels == frozenset({"Y"})

    def test_create_reuses_bound_variables(self, graph):
        run(graph, "CREATE (a:X) CREATE (a)-[r:T]->(b:Y)")
        assert graph.node_count == 2
        assert graph.relationship_count == 1

    def test_create_per_input_row(self, graph):
        run(graph, "UNWIND [1, 2, 3] AS x CREATE (n:ROW {v: x})")
        assert graph.node_count == 3
        assert sorted(n.properties["v"] for n in graph.nodes()) == [1, 2, 3]

    def test_create_undirected_rejected(self, graph):
        with pytest.raises(CypherSyntaxError):
            run(graph, "CREATE (a)-[r:T]-(b)")

    def test_create_untyped_rel_rejected(self, graph):
        with pytest.raises(CypherSyntaxError):
            run(graph, "CREATE (a)-[r]->(b)")

    def test_create_then_return(self, graph):
        result = run(graph, "CREATE (n:X {v: 7}) RETURN n.v AS v")
        assert result.rows == [(7,)]


class TestSet:
    def test_set_property(self, graph):
        run(graph, "CREATE (n:X {id: 0})")
        run(graph, "MATCH (n:X) SET n.v = 42")
        assert graph.node(0).properties["v"] == 42

    def test_set_null_removes(self, graph):
        run(graph, "CREATE (n:X {id: 0, v: 1})")
        run(graph, "MATCH (n:X) SET n.v = null")
        assert "v" not in graph.node(0).properties

    def test_set_computed_value(self, graph):
        run(graph, "CREATE (n:X {v: 2})")
        run(graph, "MATCH (n:X) SET n.v = n.v * 10")
        assert graph.node(0).properties["v"] == 20

    def test_set_on_non_element_raises(self, graph):
        with pytest.raises(CypherTypeError):
            run(graph, "UNWIND [1] AS x SET x.v = 1")


class TestDelete:
    def test_delete_relationship(self, graph):
        run(graph, "CREATE (a:X)-[r:T]->(b:Y)")
        run(graph, "MATCH (a)-[r]->(b) DELETE r")
        assert graph.relationship_count == 0
        assert graph.node_count == 2

    def test_delete_connected_node_fails(self, graph):
        run(graph, "CREATE (a:X)-[r:T]->(b:Y)")
        with pytest.raises(ValueError):
            run(graph, "MATCH (n:X) DELETE n")

    def test_detach_delete(self, graph):
        run(graph, "CREATE (a:X)-[r:T]->(b:Y)")
        run(graph, "MATCH (n:X) DETACH DELETE n")
        assert graph.node_count == 1
        assert graph.relationship_count == 0

    def test_delete_null_is_noop(self, graph):
        run(graph, "CREATE (a:X)")
        run(graph, "MATCH (a:X) OPTIONAL MATCH (a)-[r]->() DELETE r")
        assert graph.node_count == 1


class TestRemove:
    def test_remove_property(self, graph):
        run(graph, "CREATE (n:X {v: 1})")
        run(graph, "MATCH (n:X) REMOVE n.v")
        assert graph.node(0).properties == {}

    def test_remove_label(self, graph):
        run(graph, "CREATE (n:X:Y)")
        run(graph, "MATCH (n:X) REMOVE n:Y")
        assert graph.node(0).labels == frozenset({"X"})


class TestMerge:
    def test_merge_creates_when_absent(self, graph):
        run(graph, "MERGE (n:X {id: 1})")
        assert graph.node_count == 1

    def test_merge_matches_when_present(self, graph):
        run(graph, "CREATE (n:X {id: 1})")
        run(graph, "MERGE (m:X {id: 1})")
        assert graph.node_count == 1

    def test_merge_binds_variable(self, graph):
        run(graph, "CREATE (n:X {id: 1, v: 9})")
        result = run(graph, "MERGE (m:X {id: 1}) RETURN m.v AS v")
        assert result.rows == [(9,)]


class TestInitializerPipeline:
    def test_full_graph_initialization(self, graph):
        """The six write clauses cooperating, as the graph initializer uses
        them (§4)."""
        run(graph, "CREATE (a:USER {id: 0, name: 'Alice'})")
        run(graph, "CREATE (m:MOVIE {id: 1, name: 'Notebook'})")
        run(graph, "MATCH (a:USER), (m:MOVIE) CREATE (a)-[r:LIKE {rating: 5}]->(m)")
        run(graph, "MATCH (a:USER)-[r:LIKE]->(m) SET r.rating = 10")
        run(graph, "MERGE (g:GENRE {id: 2, name: 'Drama'})")
        run(graph, "MATCH (g:GENRE) REMOVE g:GENRE")
        result = run(
            graph,
            "MATCH (a:USER)-[r:LIKE]->(m:MOVIE) "
            "RETURN a.name AS a, r.rating AS rating, m.name AS m",
        )
        assert result.rows == [("Alice", 10, "Notebook")]
