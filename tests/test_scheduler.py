"""Tests for ground-truth seeding and the Algorithm 1 scheduler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ground_truth import build_constraint_graph, select_ground_truth
from repro.core.operations import ConstraintGraph, OpKind, Operation
from repro.core.scheduler import schedule
from repro.graph.generator import GraphGenerator


def make_graph(seed=0):
    return GraphGenerator(seed=seed).generate()


class TestGroundTruthSelection:
    def test_size_bounds(self):
        graph = make_graph()
        rng = random.Random(0)
        for _ in range(50):
            gt = select_ground_truth(graph, rng, max_size=6)
            assert 1 <= len(gt) <= 6

    def test_values_match_graph(self):
        graph = make_graph()
        gt = select_ground_truth(graph, random.Random(1))
        for entry in gt.entries:
            assert graph.property_value(entry.key) == entry.value

    def test_aliases_sequential(self):
        graph = make_graph()
        gt = select_ground_truth(graph, random.Random(2))
        assert gt.columns() == [f"a{i}" for i in range(len(gt))]

    def test_alias_start_offset(self):
        graph = make_graph()
        gt = select_ground_truth(graph, random.Random(2), alias_start=5)
        assert gt.columns()[0] == "a5"

    def test_empty_graph_rejected(self):
        from repro.graph.model import PropertyGraph

        with pytest.raises(ValueError):
            select_ground_truth(PropertyGraph(), random.Random(0))


class TestConstraintGraph:
    def test_duplicate_operation_rejected(self):
        cg = ConstraintGraph()
        op = Operation(OpKind.ALIAS_ADD, "a0")
        cg.add_operation(op)
        with pytest.raises(ValueError):
            cg.add_operation(op)

    def test_cycle_detection(self):
        cg = ConstraintGraph()
        op1 = cg.add_operation(Operation(OpKind.ALIAS_ADD, "a0"))
        op2 = cg.add_operation(Operation(OpKind.ALIAS_REMOVE, "a0"))
        cg.add_strict(op1, op2)
        cg.add_strict(op2, op1)
        with pytest.raises(ValueError):
            cg.validate_acyclic()

    def test_remove_updates_degrees(self):
        cg = ConstraintGraph()
        op1 = cg.add_operation(Operation(OpKind.ALIAS_ADD, "a0"))
        op2 = cg.add_operation(Operation(OpKind.ALIAS_REMOVE, "a0"))
        cg.add_strict(op1, op2)
        assert cg.indegree(op2) == 1
        cg.remove([op1])
        assert cg.indegree(op2) == 0


class TestSeeding:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_essential_operations_present(self, seed):
        graph = make_graph(seed)
        rng = random.Random(seed)
        gt = select_ground_truth(graph, rng)
        plan = build_constraint_graph(graph, gt, rng)
        accesses = [
            op for op in plan.graph.operations if op.kind == OpKind.PROP_ACCESS
        ]
        # One access per expected-result column, each mapped to its index.
        assert {op.ground_truth_index for op in accesses} == set(range(len(gt)))
        # Every ground-truth element has paired add/remove operations.
        for entry in gt.entries:
            element = (entry.key.element_kind, entry.key.element_id)
            kinds = {
                op.kind for op in plan.graph.operations if op.element == element
            }
            assert OpKind.ELEMENT_ADD in kinds
            assert OpKind.ELEMENT_REMOVE in kinds

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_dag_is_acyclic(self, seed):
        graph = make_graph(seed)
        rng = random.Random(seed)
        gt = select_ground_truth(graph, rng)
        plan = build_constraint_graph(graph, gt, rng)
        plan.graph.validate_acyclic()

    def test_every_add_is_paired_with_removal(self):
        graph = make_graph(3)
        rng = random.Random(3)
        gt = select_ground_truth(graph, rng)
        plan = build_constraint_graph(graph, gt, rng)
        adds = {
            op.variable
            for op in plan.graph.operations
            if op.kind in (OpKind.ELEMENT_ADD, OpKind.ALIAS_ADD, OpKind.LIST_EXPAND)
        }
        removes = {
            op.variable
            for op in plan.graph.operations
            if op.kind
            in (OpKind.ELEMENT_REMOVE, OpKind.ALIAS_REMOVE, OpKind.LIST_TRUNCATE)
        }
        assert adds == removes


class TestScheduling:
    def _plan(self, seed):
        graph = make_graph(seed)
        rng = random.Random(seed)
        gt = select_ground_truth(graph, rng)
        return build_constraint_graph(graph, gt, rng), rng

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_all_operations_scheduled_exactly_once(self, seed):
        plan, rng = self._plan(seed)
        all_ops = list(plan.graph.operations)
        steps = schedule(plan.graph, rng)
        scheduled = [op for step in steps for op in step.operations]
        assert sorted(map(str, scheduled)) == sorted(map(str, all_ops))

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_temporal_constraints_respected(self, seed):
        """E+ strictly before (E.p)+; adds never after their removals."""
        plan, rng = self._plan(seed)
        steps = schedule(plan.graph, rng)
        ops_by_step = [
            {(op.kind, op.variable) for op in step.operations} for step in steps
        ]

        def step_of(kind, var):
            for index, ops in enumerate(ops_by_step):
                if (kind, var) in ops:
                    return index
            return None

        for (element, var) in plan.element_vars.items():
            add_step = step_of(OpKind.ELEMENT_ADD, var)
            remove_step = step_of(OpKind.ELEMENT_REMOVE, var)
            if add_step is not None and remove_step is not None:
                assert add_step <= remove_step
        for alias in plan.supplementary_aliases:
            assert step_of(OpKind.ALIAS_ADD, alias) < step_of(
                OpKind.ALIAS_REMOVE, alias
            )
        for alias in plan.list_aliases:
            assert step_of(OpKind.LIST_EXPAND, alias) < step_of(
                OpKind.LIST_TRUNCATE, alias
            )

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_steps_have_consistent_clause_family(self, seed):
        plan, rng = self._plan(seed)
        steps = schedule(plan.graph, rng)
        for step in steps:
            assert step.clause_kinds  # non-empty intersection
            for op in step.operations:
                assert step.clause_kinds <= op.clause_kinds or (
                    step.clause_kinds & op.clause_kinds
                )

    def test_low_probability_spreads_steps(self):
        """Statistically, a lower rand() gate yields more steps."""
        dense_total = sparse_total = 0
        for seed in range(20):
            plan_a, rng_a = self._plan(seed)
            dense_total += len(schedule(plan_a.graph, rng_a, include_probability=0.95))
            plan_b, rng_b = self._plan(seed)
            sparse_total += len(schedule(plan_b.graph, rng_b, include_probability=0.15))
        assert sparse_total > dense_total

    def test_referenceable_variables_accumulate(self):
        plan, rng = self._plan(11)
        steps = schedule(plan.graph, rng)
        seen = set()
        for step in steps:
            introduced = {
                op.variable
                for op in step.operations
                if op.kind in (OpKind.ELEMENT_ADD, OpKind.ALIAS_ADD,
                               OpKind.LIST_EXPAND, OpKind.PROP_ACCESS)
            }
            removed = {
                op.variable
                for op in step.operations
                if op.kind in (OpKind.ELEMENT_REMOVE, OpKind.ALIAS_REMOVE,
                               OpKind.LIST_TRUNCATE)
            }
            seen = (seen | introduced) - removed
            assert set(step.referenceable) == seen
