"""Tests for the observability layer (repro.obs) and the driver-style API.

Covers the zero-cost-when-off contract, deterministic metric merges across
worker counts, the ``GraphDatabase.session`` context manager, keyword-only
tuning parameters, ``ResultSet.to_table``, and the ``repro stats`` /
``repro trace`` CLI verbs on a recorded event log.
"""

import json

import pytest

from repro.cli import main
from repro.core.reporting import load_event_stream
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherRuntimeError
from repro.experiments.campaign import run_campaign_grid, run_tool_campaign
from repro.gdb import EngineSpec, create_engine
from repro.gdb.engines import FalkorDBSim, GraphDatabase, Neo4jSim, Session
from repro.graph.generator import GraphGenerator
from repro.obs import (
    DEFAULT_TIME_EDGES,
    PROBE,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    deterministic_view,
    merge_snapshots,
    metric_key,
    observed,
    render_stats,
    render_trace,
    split_metric_key,
)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("q", engine="neo4j").inc(3)
        reg.counter("q", engine="neo4j").inc(2)
        reg.gauge("t").set(4.5)
        hist = reg.histogram("h", edges=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = reg.snapshot()
        assert snap["counters"][metric_key("q", {"engine": "neo4j"})] == 5
        assert snap["gauges"]["t"] == 4.5
        data = snap["histograms"]["h"]
        assert data["counts"] == [1, 1, 1]  # one per bucket incl. overflow
        assert data["count"] == 3
        assert data["min"] == 0.5 and data["max"] == 50.0

    def test_metric_key_round_trip(self):
        key = metric_key("campaign.queries", {"tester": "GQS", "engine": "kuzu"})
        name, labels = split_metric_key(key)
        assert name == "campaign.queries"
        assert labels == {"engine": "kuzu", "tester": "GQS"}
        # Label order never matters: keys are canonical.
        assert key == metric_key(
            "campaign.queries", {"engine": "kuzu", "tester": "GQS"}
        )

    def test_same_instrument_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x="1") is reg.counter("a", x="1")
        assert reg.counter("a", x="1") is not reg.counter("a", x="2")

    def test_merge_sums_counters_and_histograms(self):
        snaps = []
        for _ in range(3):
            reg = MetricsRegistry()
            reg.counter("n").inc(2)
            reg.gauge("g").set(1.0)
            reg.histogram("h", edges=(1.0,)).observe(0.5)
            snaps.append(reg.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["counters"]["n"] == 6
        assert merged["histograms"]["h"]["counts"] == [3, 0]
        assert merged["histograms"]["h"]["count"] == 3

    def test_merge_gauges_take_max(self):
        snaps = []
        for value in (3.0, 7.0, 5.0):
            reg = MetricsRegistry()
            reg.gauge("g").set(value)
            snaps.append(reg.snapshot())
        assert merge_snapshots(snaps)["gauges"]["g"] == 7.0

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", edges=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_is_order_independent(self):
        """Element-wise sums commute — the property the parallel barrier
        merge relies on to be worker-count independent."""
        regs = []
        for i in range(4):
            reg = MetricsRegistry()
            reg.counter("n").inc(i + 1)
            reg.histogram("h").observe(10.0 ** (-i))
            regs.append(reg.snapshot())
        forward = merge_snapshots(regs)
        backward = merge_snapshots(list(reversed(regs)))
        assert forward == backward

    def test_deterministic_view_drops_timings(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        reg.histogram("t", timing=True).observe(0.25)
        snap = reg.snapshot()
        assert "t" in snap["timings"]
        view = deterministic_view(snap)
        assert "timings" not in view
        assert view["counters"] == {"n": 1}

    def test_default_time_edges_are_sorted(self):
        assert list(DEFAULT_TIME_EDGES) == sorted(DEFAULT_TIME_EDGES)


class TestProbe:
    def test_off_by_default(self):
        assert not PROBE.on
        assert isinstance(PROBE.metrics, NullRegistry)

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("x", a="b").inc(5)
        reg.gauge("y").set(1.0)
        reg.histogram("z").observe(2.0)
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "timings": {},
        }

    def test_observed_scopes_and_restores(self):
        assert not PROBE.on
        with observed() as (metrics, _tracer):
            assert PROBE.on
            assert PROBE.metrics is metrics
            metrics.counter("inside").inc(1)
        assert not PROBE.on
        assert isinstance(PROBE.metrics, NullRegistry)

    def test_nested_scopes_do_not_mix(self):
        with observed() as (outer, _t1):
            outer.counter("a").inc(1)
            with observed() as (inner, _t2):
                inner.counter("b").inc(1)
            assert PROBE.metrics is outer
            assert "b" not in PROBE.metrics.snapshot()["counters"]

    def test_tracer_spans_nest_and_feed_stage_histogram(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg, sim_clock=lambda: 42.0)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = tracer.drain()
        assert [span["name"] for span in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]
        assert inner["sim0"] == 42.0 and inner["sim1"] == 42.0
        timings = reg.snapshot()["timings"]
        assert metric_key("stage.seconds", {"stage": "outer"}) in timings
        assert tracer.drain() == []  # drain clears


class TestCampaignDeterminism:
    def test_results_identical_with_metrics_on_and_off(self):
        kwargs = dict(budget_seconds=10.0, seed=5, gate_scale=0.05)
        plain = run_tool_campaign("GQS", "falkordb", **kwargs)
        with observed() as (metrics, _tracer):
            traced = run_tool_campaign("GQS", "falkordb", **kwargs)
        assert traced.queries_run == plain.queries_run
        assert traced.detected_faults == plain.detected_faults
        assert traced.timeline == plain.timeline
        assert traced.sim_seconds == plain.sim_seconds
        snap = metrics.snapshot()
        key = metric_key(
            "campaign.queries", {"engine": "falkordb", "tester": "GQS"}
        )
        assert snap["counters"][key] == plain.queries_run

    def test_grid_snapshot_independent_of_jobs(self, tmp_path):
        def grid_snapshot(jobs):
            path = tmp_path / f"jobs{jobs}.jsonl"
            run_campaign_grid(
                ("GQS", "GRev"), ("falkordb",), seeds=(0, 1),
                budget_seconds=6.0, gate_scale=0.05, derive_seeds=True,
                jobs=jobs, events_path=path, record_metrics=True,
            )
            events = load_event_stream(path)
            grid = [e for e in events
                    if e.get("event") == "metrics" and e.get("scope") == "grid"]
            assert len(grid) == 1
            return deterministic_view(grid[0]["snapshot"])

        assert grid_snapshot(1) == grid_snapshot(2)

    def test_span_and_metrics_events_tolerated_by_resume(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0,), budget_seconds=6.0,
            gate_scale=0.05, jobs=1, events_path=path, record_metrics=True,
        )
        events = load_event_stream(path)
        kinds = {event["event"] for event in events}
        assert "span" in kinds and "metrics" in kinds
        # Resuming over a log full of span/metrics events re-runs nothing.
        resumed = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0,), budget_seconds=6.0,
            gate_scale=0.05, jobs=1, resume_path=path,
        )
        key = ("GQS", "falkordb", 0)
        assert resumed[key].detected_faults == first[key].detected_faults
        assert resumed[key].queries_run == first[key].queries_run


class TestSessionAPI:
    @pytest.fixture
    def graph_schema(self):
        return GraphGenerator(seed=3).generate_with_schema()

    def test_session_runs_queries(self, graph_schema):
        schema, graph = graph_schema
        engine = create_engine("neo4j", faults_enabled=False)
        with engine.session(graph, schema) as session:
            result = session.run("MATCH (n) RETURN count(*) AS c")
            assert result.rows[0][0] == graph.node_count
            assert session.engine is engine
            assert session.last_fault is None
        assert session.closed

    def test_closed_session_raises(self, graph_schema):
        schema, graph = graph_schema
        engine = create_engine("neo4j", faults_enabled=False)
        session = engine.session(graph, schema)
        session.close()
        with pytest.raises(CypherRuntimeError):
            session.run("RETURN 1 AS x")

    def test_session_without_graph_keeps_state(self, graph_schema):
        schema, graph = graph_schema
        engine = create_engine("falkordb", faults_enabled=False)
        engine.load_graph(graph, schema)
        engine.execute("RETURN 1 AS x")
        with engine.session() as session:  # no graph: reuse what is loaded
            session.run("RETURN 2 AS x")
        assert engine.queries_since_restart == 2

    def test_session_restart_false_keeps_counter(self, graph_schema):
        schema, graph = graph_schema
        engine = create_engine("falkordb", faults_enabled=False)
        engine.load_graph(graph, schema)
        engine.execute("RETURN 1 AS x")
        with engine.session(graph, schema, restart=False) as session:
            session.run("RETURN 2 AS x")
        assert engine.queries_since_restart == 2
        with engine.session(graph, schema) as session:  # default restarts
            session.run("RETURN 3 AS x")
        assert engine.queries_since_restart == 1


class TestKeywordOnlyAPI:
    def test_create_engine_rejects_positional_tuning(self):
        with pytest.raises(TypeError):
            create_engine("neo4j", False)

    def test_sim_engines_reject_positional_tuning(self):
        with pytest.raises(TypeError):
            Neo4jSim(False)
        with pytest.raises(TypeError):
            FalkorDBSim(True, 0.5)

    def test_graph_database_rejects_positional_tuning(self):
        dialect = create_engine("neo4j").dialect
        with pytest.raises(TypeError):
            GraphDatabase(dialect, None, False)

    def test_load_graph_rejects_positional_restart(self):
        schema, graph = GraphGenerator(seed=1).generate_with_schema()
        engine = create_engine("neo4j")
        with pytest.raises(TypeError):
            engine.load_graph(graph, schema, False)

    def test_session_rejects_positional_restart(self):
        schema, graph = GraphGenerator(seed=1).generate_with_schema()
        engine = create_engine("neo4j")
        with pytest.raises(TypeError):
            engine.session(graph, schema, False)

    def test_engine_spec_is_keyword_only(self):
        with pytest.raises(TypeError):
            EngineSpec("neo4j", False)
        spec = EngineSpec("neo4j", faults_enabled=False, gate_scale=0.5)
        assert spec.gate_scale == 0.5


class TestResultSetToTable:
    def test_format_result_delegates_to_to_table(self):
        engine = create_engine("neo4j", faults_enabled=False)
        result = ResultSet(["x"], [(1.5,), ([1, "a"],)])
        assert engine.format_result(result) == result.to_table(engine.dialect)

    def test_dialect_float_digits_respected(self):
        result = ResultSet(["x"], [(0.1234567890123,)])
        class SixDigits:
            float_format_digits = 6
        assert result.to_table(SixDigits()) == [["0.123457"]]
        full = result.to_table()  # no dialect: full precision repr
        assert full == [[repr(0.1234567890123)]]

    def test_lists_render_recursively(self):
        result = ResultSet(["x"], [([1.25, [2.5]],)])
        class OneDigit:
            float_format_digits = 1
        assert result.to_table(OneDigit()) == [["[1, [2]]"]]


class TestObservabilityCLI:
    @pytest.fixture(scope="class")
    def event_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "events.jsonl"
        code = main([
            "run", "--engine", "falkordb", "--minutes", "0.15",
            "--gate-scale", "0.05", "--metrics", "--events", str(path),
        ])
        assert code == 0
        return path

    def test_run_alias_records_metrics_events(self, event_log):
        kinds = {event["event"] for event in load_event_stream(event_log)}
        assert "metrics" in kinds and "span" in kinds

    def test_stats_renders_stage_histograms(self, event_log, capsys):
        assert main(["stats", str(event_log)]) == 0
        out = capsys.readouterr().out
        for stage in ("synthesize", "propose", "judge", "execute"):
            assert f"stage {stage}" in out
        assert "queries per tester" in out
        assert "GQS" in out and "falkordb" in out

    def test_trace_renders_span_tree(self, event_log, capsys):
        assert main(["trace", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "[GQS/falkordb/0]" in out
        assert "campaign" in out and "synthesize" in out
        # Child spans are indented under their parents.
        lines = out.splitlines()
        campaign_line = next(l for l in lines if "campaign" in l)
        synth_line = next(l for l in lines if "synthesize" in l)
        indent = lambda line: len(line) - len(line.lstrip())
        assert indent(synth_line) > indent(campaign_line)

    def test_stats_without_metrics_says_so(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(json.dumps({"event": "cell_complete"}) + "\n")
        assert main(["stats", str(path)]) == 0
        assert "--metrics" in capsys.readouterr().out

    def test_missing_log_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 2

    def test_render_helpers_accept_event_dicts(self, event_log):
        events = load_event_stream(event_log)
        assert "== counters ==" in render_stats(events)
        assert "×" in render_trace(events) or "x" in render_trace(events)


def test_session_repr_mentions_engine():
    engine = create_engine("neo4j")
    session = Session(engine)
    assert "neo4j" in repr(session)
    session.close()
    assert "closed" in repr(session)
