"""Tests for the labeled property graph model."""

import pytest

from repro.graph.model import Node, Path, PropertyGraph, PropertyKey, Relationship


@pytest.fixture
def small_graph():
    graph = PropertyGraph()
    a = graph.add_node(["USER"], {"name": "Alice", "id": 0})
    b = graph.add_node(["MOVIE"], {"name": "Longlegs", "id": 1})
    c = graph.add_node(["MOVIE", "CLASSIC"], {"name": "Notebook", "id": 2})
    graph.add_relationship(a.id, b.id, "LIKE", {"rating": 7, "id": 0})
    graph.add_relationship(a.id, c.id, "LIKE", {"rating": 10, "id": 1})
    graph.add_relationship(b.id, c.id, "SEQUEL_OF", {"id": 2})
    return graph


class TestConstruction:
    def test_counts(self, small_graph):
        assert small_graph.node_count == 3
        assert small_graph.relationship_count == 3

    def test_ids_are_sequential(self, small_graph):
        assert small_graph.node_ids() == [0, 1, 2]
        assert small_graph.relationship_ids() == [0, 1, 2]

    def test_explicit_ids_respected(self):
        graph = PropertyGraph()
        graph.add_node(node_id=10)
        node = graph.add_node()
        assert node.id == 11

    def test_duplicate_node_id_rejected(self):
        graph = PropertyGraph()
        graph.add_node(node_id=1)
        with pytest.raises(ValueError):
            graph.add_node(node_id=1)

    def test_relationship_requires_endpoints(self):
        graph = PropertyGraph()
        graph.add_node()
        with pytest.raises(KeyError):
            graph.add_relationship(0, 99, "T")

    def test_self_loop_allowed(self):
        graph = PropertyGraph()
        node = graph.add_node()
        rel = graph.add_relationship(node.id, node.id, "SELF")
        assert rel.other_end(node.id) == node.id


class TestIndexes:
    def test_label_index(self, small_graph):
        movies = small_graph.nodes_with_label("MOVIE")
        assert {n.id for n in movies} == {1, 2}
        assert small_graph.nodes_with_label("NOPE") == []

    def test_type_index(self, small_graph):
        likes = small_graph.relationships_with_type("LIKE")
        assert {r.id for r in likes} == {0, 1}

    def test_labels_listing(self, small_graph):
        assert small_graph.labels() == ["CLASSIC", "MOVIE", "USER"]

    def test_relationship_types_listing(self, small_graph):
        assert small_graph.relationship_types() == ["LIKE", "SEQUEL_OF"]


class TestTraversal:
    def test_outgoing_incoming(self, small_graph):
        assert {r.id for r in small_graph.outgoing(0)} == {0, 1}
        assert {r.id for r in small_graph.incoming(2)} == {1, 2}

    def test_touching(self, small_graph):
        assert {r.id for r in small_graph.touching(1)} == {0, 2}

    def test_degree(self, small_graph):
        assert small_graph.degree(0) == 2
        assert small_graph.degree(2) == 2

    def test_neighbours_deduplicated(self):
        graph = PropertyGraph()
        a = graph.add_node()
        b = graph.add_node()
        graph.add_relationship(a.id, b.id, "T")
        graph.add_relationship(b.id, a.id, "T")
        assert graph.neighbours(a.id) == [b.id]


class TestDeletion:
    def test_remove_relationship(self, small_graph):
        small_graph.remove_relationship(0)
        assert small_graph.relationship_count == 2
        assert {r.id for r in small_graph.outgoing(0)} == {1}

    def test_remove_node_with_rels_fails(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.remove_node(0)

    def test_detach_delete(self, small_graph):
        small_graph.detach_delete_node(0)
        assert small_graph.node_count == 2
        assert small_graph.relationship_count == 1  # only SEQUEL_OF remains


class TestProperties:
    def test_property_key_resolution(self, small_graph):
        key = PropertyKey("node", 1, "name")
        assert small_graph.property_value(key) == "Longlegs"
        rel_key = PropertyKey("rel", 1, "rating")
        assert small_graph.property_value(rel_key) == 10

    def test_all_property_keys(self, small_graph):
        keys = small_graph.all_property_keys()
        assert PropertyKey("node", 0, "name") in keys
        assert PropertyKey("rel", 0, "rating") in keys
        # 3 nodes x 2 props + rel props (2 + 2 + 1).
        assert len(keys) == 11

    def test_missing_property_is_none(self, small_graph):
        assert small_graph.property_value(PropertyKey("node", 0, "ghost")) is None


class TestCopy:
    def test_copy_is_deep_for_structure(self, small_graph):
        clone = small_graph.copy()
        clone.add_node(["NEW"])
        clone.node(0).properties["name"] = "Changed"
        assert small_graph.node_count == 3
        assert small_graph.node(0).properties["name"] == "Alice"

    def test_copy_preserves_everything(self, small_graph):
        clone = small_graph.copy()
        assert clone.node_count == small_graph.node_count
        assert clone.relationship_count == small_graph.relationship_count
        assert clone.labels() == small_graph.labels()


class TestPath:
    def test_arity_check(self):
        node = Node(0)
        with pytest.raises(ValueError):
            Path((node,), (Relationship(0, "T", 0, 0),))

    def test_element_ids_interleaved(self):
        a, b = Node(0), Node(1)
        rel = Relationship(7, "T", 0, 1)
        path = Path((a, b), (rel,))
        assert path.element_ids() == (("node", 0), ("rel", 7), ("node", 1))
        assert len(path) == 1


class TestElementSemantics:
    def test_node_equality_by_id(self):
        assert Node(1, ["A"]) == Node(1, ["B"])
        assert Node(1) != Node(2)
        assert hash(Node(1)) == hash(Node(1))

    def test_node_not_equal_relationship(self):
        assert Node(1) != Relationship(1, "T", 0, 0)

    def test_labels_frozen(self):
        node = Node(1, ["A", "B"])
        assert node.labels == frozenset({"A", "B"})
