"""Tests for campaign persistence and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.reporting import (
    campaign_from_dict,
    campaign_to_dict,
    completed_cells_from_events,
    event_to_json_line,
    load_campaign,
    load_event_stream,
    save_campaign,
    save_event_stream,
)
from repro.core.runner import BugReport, CampaignResult, GQSTester
from repro.gdb import create_engine


@pytest.fixture(scope="module")
def campaign():
    engine = create_engine("falkordb", gate_scale=0.05)
    return GQSTester().run(engine, budget_seconds=20.0, seed=4)


class TestReporting:
    def test_round_trip(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert loaded.tester == campaign.tester
        assert loaded.engine == campaign.engine
        assert loaded.queries_run == campaign.queries_run
        assert loaded.sim_seconds == campaign.sim_seconds
        assert loaded.detected_faults == campaign.detected_faults
        assert len(loaded.reports) == len(campaign.reports)
        assert loaded.timeline == campaign.timeline
        assert loaded.trigger_records == campaign.trigger_records

    def test_json_is_plain(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        data = json.loads(path.read_text())
        assert data["tester"] == "GQS"
        for report in data["reports"]:
            assert set(report) == {
                "tester", "engine", "kind", "detail", "query",
                "fault_id", "sim_time", "n_steps",
            }

    def test_report_round_trip_preserves_fp_flag(self):
        original = CampaignResult("T", "e")
        original.reports = [BugReport("T", "e", "logic", "d", "q", None, 1.0)]
        restored = campaign_from_dict(campaign_to_dict(original))
        assert restored.reports[0].is_false_positive

    def test_figures_work_on_loaded_campaign(self, campaign, tmp_path):
        """A stored campaign can be re-analyzed without re-running."""
        from repro.experiments import figure13

        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        if loaded.trigger_records:
            histogram = figure13(loaded.trigger_records)
            assert sum(histogram.values()) == len(loaded.trigger_records)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "--engine", "kuzu"])
        assert args.command == "campaign"
        args = parser.parse_args(["table", "5"])
        assert args.id == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "9"])

    def test_synthesize_command(self, capsys):
        assert main(["synthesize", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "expected result set" in out
        assert "RETURN" in out

    def test_synthesize_with_gremlin(self, capsys):
        assert main(["synthesize", "--seed", "3", "--gremlin"]) == 0
        out = capsys.readouterr().out
        assert "Gremlin translation" in out

    def test_campaign_command_with_export(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        code = main([
            "campaign", "--engine", "falkordb", "--minutes", "0.3",
            "--seed", "1", "--gate-scale", "0.05", "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        printed = capsys.readouterr().out
        assert "distinct bugs" in printed

    def test_campaign_unsupported_pairing(self, capsys):
        code = main(["campaign", "--engine", "memgraph", "--tester", "GDBMeter"])
        assert code == 2

    def test_table2_command(self, capsys):
        assert main(["table", "2"]) == 0
        assert "Neo4j" in capsys.readouterr().out

    def test_parser_accepts_table4_and_grid_flags(self):
        parser = build_parser()
        args = parser.parse_args(["table", "4", "--jobs", "2"])
        assert args.id == 4 and args.jobs == 2
        args = parser.parse_args(
            ["campaign", "--seeds", "3", "--jobs", "2", "--events", "e.jsonl"]
        )
        assert (args.seeds, args.jobs, args.events) == (3, 2, "e.jsonl")
        args = parser.parse_args(["compare", "--jobs", "4", "--resume", "r.jsonl"])
        assert args.jobs == 4 and args.resume == "r.jsonl"

    def test_compare_command_with_jobs(self, capsys):
        assert main([
            "compare", "--engine", "falkordb", "--minutes", "0.05",
            "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        for tool in ("GQS", "GDsmith", "GRev"):
            assert tool in out

    def test_campaign_seed_replicates_with_events(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main([
            "campaign", "--engine", "falkordb", "--minutes", "0.05",
            "--seeds", "2", "--jobs", "2", "--events", str(log),
        ]) == 0
        assert "union over 2 seeds" in capsys.readouterr().out
        kinds = [event["event"] for event in load_event_stream(log)]
        assert kinds.count("cell_complete") == 2


class TestEventStream:
    """Round-trips of the campaign event-stream records (repro.runtime)."""

    def events(self, campaign):
        return [
            {"event": "grid_start", "cells": 1, "jobs": 2},
            {"event": "campaign_start", "tester": "GQS", "engine": "falkordb",
             "seed": 0, "budget_seconds": 20.0, "max_queries": None,
             "restart_per_graph": True},
            {"event": "fault", "fault_id": "falkordb-L1", "kind": "logic",
             "sim_time": 1.5, "engine": "falkordb"},
            {"event": "crash", "engine": "falkordb", "sim_time": 2.0},
            {"event": "cell_complete", "tester": "GQS", "engine": "falkordb",
             "seed": 0, "campaign": campaign_to_dict(campaign)},
            {"event": "grid_end", "cells": 1},
        ]

    def test_jsonl_round_trip(self, campaign, tmp_path):
        path = tmp_path / "events.jsonl"
        events = self.events(campaign)
        save_event_stream(events, path)
        assert load_event_stream(path) == events

    def test_event_lines_are_compact_single_line_json(self, campaign):
        for event in self.events(campaign):
            line = event_to_json_line(event)
            assert "\n" not in line
            assert json.loads(line) == event

    def test_append_mode_extends_the_log(self, campaign, tmp_path):
        path = tmp_path / "events.jsonl"
        events = self.events(campaign)
        save_event_stream(events[:2], path)
        save_event_stream(events[2:], path, append=True)
        assert load_event_stream(path) == events

    def test_torn_trailing_line_is_tolerated(self, campaign, tmp_path):
        # A killed run can leave a half-written last line; loading must
        # recover every complete record before it.
        path = tmp_path / "events.jsonl"
        events = self.events(campaign)
        save_event_stream(events, path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "campaign_sta')
        assert load_event_stream(path) == events

    def test_completed_cells_reconstruct_campaigns(self, campaign, tmp_path):
        path = tmp_path / "events.jsonl"
        save_event_stream(self.events(campaign), path)
        cells = completed_cells_from_events(load_event_stream(path))
        assert set(cells) == {("GQS", "falkordb", 0)}
        restored = cells[("GQS", "falkordb", 0)]
        assert campaign_to_dict(restored) == campaign_to_dict(campaign)

    def test_resume_merges_identical_campaign(self, campaign, tmp_path):
        """campaign -> JSONL checkpoint -> resume -> identical result."""
        from repro.runtime import CampaignCell, ParallelCampaignRunner

        path = tmp_path / "events.jsonl"
        save_event_stream(self.events(campaign), path)
        cell = CampaignCell("GQS", "falkordb", 0, budget_seconds=20.0,
                            gate_scale=0.05)
        results = ParallelCampaignRunner(jobs=1).run([cell], resume_path=path)
        assert campaign_to_dict(results[cell.key]) == campaign_to_dict(campaign)
