"""Tests for campaign persistence and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.reporting import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from repro.core.runner import BugReport, CampaignResult, GQSTester
from repro.gdb import create_engine


@pytest.fixture(scope="module")
def campaign():
    engine = create_engine("falkordb", gate_scale=0.05)
    return GQSTester().run(engine, budget_seconds=20.0, seed=4)


class TestReporting:
    def test_round_trip(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert loaded.tester == campaign.tester
        assert loaded.engine == campaign.engine
        assert loaded.queries_run == campaign.queries_run
        assert loaded.sim_seconds == campaign.sim_seconds
        assert loaded.detected_faults == campaign.detected_faults
        assert len(loaded.reports) == len(campaign.reports)
        assert loaded.timeline == campaign.timeline
        assert loaded.trigger_records == campaign.trigger_records

    def test_json_is_plain(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        data = json.loads(path.read_text())
        assert data["tester"] == "GQS"
        for report in data["reports"]:
            assert set(report) == {
                "tester", "engine", "kind", "detail", "query",
                "fault_id", "sim_time", "n_steps",
            }

    def test_report_round_trip_preserves_fp_flag(self):
        original = CampaignResult("T", "e")
        original.reports = [BugReport("T", "e", "logic", "d", "q", None, 1.0)]
        restored = campaign_from_dict(campaign_to_dict(original))
        assert restored.reports[0].is_false_positive

    def test_figures_work_on_loaded_campaign(self, campaign, tmp_path):
        """A stored campaign can be re-analyzed without re-running."""
        from repro.experiments import figure13

        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        if loaded.trigger_records:
            histogram = figure13(loaded.trigger_records)
            assert sum(histogram.values()) == len(loaded.trigger_records)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "--engine", "kuzu"])
        assert args.command == "campaign"
        args = parser.parse_args(["table", "5"])
        assert args.id == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "9"])

    def test_synthesize_command(self, capsys):
        assert main(["synthesize", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "expected result set" in out
        assert "RETURN" in out

    def test_synthesize_with_gremlin(self, capsys):
        assert main(["synthesize", "--seed", "3", "--gremlin"]) == 0
        out = capsys.readouterr().out
        assert "Gremlin translation" in out

    def test_campaign_command_with_export(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        code = main([
            "campaign", "--engine", "falkordb", "--minutes", "0.3",
            "--seed", "1", "--gate-scale", "0.05", "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        printed = capsys.readouterr().out
        assert "distinct bugs" in printed

    def test_campaign_unsupported_pairing(self, capsys):
        code = main(["campaign", "--engine", "memgraph", "--tester", "GDBMeter"])
        assert code == 2

    def test_table2_command(self, capsys):
        assert main(["table", "2"]) == 0
        assert "Neo4j" in capsys.readouterr().out
