"""Tests for the reference clause executor."""

import pytest

from repro.cypher.parser import parse_query
from repro.engine.errors import CypherRuntimeError, CypherSyntaxError
from repro.engine.executor import Executor
from repro.graph.model import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph()
    alice = g.add_node(["USER"], {"name": "Alice", "id": 0, "age": 30})
    bob = g.add_node(["USER"], {"name": "Bob", "id": 1, "age": 25})
    m1 = g.add_node(["MOVIE"], {"name": "Longlegs", "id": 2, "year": 2024,
                                "genre": ["Horror"]})
    m2 = g.add_node(["MOVIE", "CLASSIC"], {"name": "Notebook", "id": 3,
                                           "year": 2004,
                                           "genre": ["Drama", "Romance"]})
    g.add_relationship(alice.id, m1.id, "LIKE", {"rating": 7, "id": 0})
    g.add_relationship(alice.id, m2.id, "LIKE", {"rating": 10, "id": 1})
    g.add_relationship(bob.id, m2.id, "LIKE", {"rating": 9, "id": 2})
    g.add_relationship(bob.id, alice.id, "KNOWS", {"id": 3})
    return g


@pytest.fixture
def ex(graph):
    return Executor(graph)


def run(ex, text):
    return ex.execute(parse_query(text))


class TestMatch:
    def test_all_nodes(self, ex):
        assert len(run(ex, "MATCH (n) RETURN n")) == 4

    def test_label_filter(self, ex):
        assert len(run(ex, "MATCH (n:MOVIE) RETURN n")) == 2
        assert len(run(ex, "MATCH (n:MOVIE:CLASSIC) RETURN n")) == 1

    def test_directed_pattern(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) RETURN u.name, m.name")
        assert len(rows) == 3

    def test_reverse_direction_equivalent(self, ex):
        fwd = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) RETURN u.name, m.name")
        rev = run(ex, "MATCH (m)<-[r:LIKE]-(u:USER) RETURN u.name, m.name")
        assert fwd.same_rows(rev)

    def test_undirected(self, ex):
        rows = run(ex, "MATCH (a {name: 'Alice'})-[r]-(b) RETURN b.name")
        # Two LIKEs out plus KNOWS in.
        assert sorted(r[0] for r in rows.rows) == ["Bob", "Longlegs", "Notebook"]

    def test_inline_properties(self, ex):
        rows = run(ex, "MATCH (n {id: 2}) RETURN n.name")
        assert rows.rows == [("Longlegs",)]

    def test_where_filter(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) WHERE r.rating >= 9 "
                       "RETURN m.name, r.rating")
        assert len(rows) == 2

    def test_where_null_is_filtered(self, ex):
        rows = run(ex, "MATCH (n) WHERE n.rating > 5 RETURN n")
        assert len(rows) == 0  # nodes have no rating; null predicate drops

    def test_relationship_uniqueness_enforced(self, ex):
        # A two-hop pattern cannot reuse the same relationship.
        rows = run(ex, "MATCH (a)-[r1]-(b)-[r2]-(a2) WHERE id(a) = 0 AND id(a2) = 0 "
                       "RETURN r1, r2")
        for r1, r2 in rows.rows:
            assert r1.id != r2.id

    def test_relationship_uniqueness_disabled(self, graph):
        loose = Executor(graph, enforce_rel_uniqueness=False)
        strict = Executor(graph)
        q = "MATCH (a)-[r1]-(b)-[r2]-(c) RETURN r1, r2"
        assert len(loose.execute(parse_query(q))) > len(strict.execute(parse_query(q)))

    def test_multiple_patterns_cartesian(self, ex):
        rows = run(ex, "MATCH (u:USER), (m:MOVIE) RETURN u.name, m.name")
        assert len(rows) == 4

    def test_multiple_patterns_join_on_shared_variable(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r1:LIKE]->(m), (u)-[k:KNOWS]->(other) "
                       "RETURN u.name, m.name")
        # Only Bob has KNOWS; Bob likes one movie.
        assert rows.rows == [("Bob", "Notebook")]

    def test_bound_variable_rematch(self, ex):
        rows = run(ex, "MATCH (u {name: 'Alice'}) MATCH (u)-[r:LIKE]->(m) "
                       "RETURN m.name")
        assert len(rows) == 2


class TestOptionalMatch:
    def test_fills_nulls(self, ex):
        rows = run(ex, "MATCH (m:MOVIE) OPTIONAL MATCH (m)-[r:KNOWS]->(x) "
                       "RETURN m.name, x")
        assert len(rows) == 2
        assert all(row[1] is None for row in rows.rows)

    def test_optional_with_where(self, ex):
        rows = run(ex, "MATCH (u:USER) OPTIONAL MATCH (u)-[r:LIKE]->(m) "
                       "WHERE r.rating > 9 RETURN u.name, m.name")
        as_dict = dict(rows.rows)
        assert as_dict["Alice"] == "Notebook"
        assert as_dict["Bob"] is None

    def test_first_clause_optional(self, ex):
        rows = run(ex, "OPTIONAL MATCH (n:GHOST) RETURN n")
        assert rows.rows == [(None,)]


class TestUnwind:
    def test_expands_rows(self, ex):
        rows = run(ex, "UNWIND [1, 2, 3] AS x RETURN x")
        assert [r[0] for r in rows.rows] == [1, 2, 3]

    def test_null_produces_nothing(self, ex):
        assert len(run(ex, "UNWIND null AS x RETURN x")) == 0

    def test_empty_list_produces_nothing(self, ex):
        assert len(run(ex, "UNWIND [] AS x RETURN x")) == 0

    def test_scalar_wraps(self, ex):
        rows = run(ex, "UNWIND 5 AS x RETURN x")
        assert rows.rows == [(5,)]

    def test_unwind_property_list(self, ex):
        rows = run(ex, "MATCH (m {id: 3}) UNWIND m.genre AS g RETURN g")
        assert [r[0] for r in rows.rows] == ["Drama", "Romance"]

    def test_multiplies_each_input_row(self, ex):
        rows = run(ex, "MATCH (u:USER) UNWIND [1,2] AS x RETURN u.name, x")
        assert len(rows) == 4


class TestProjection:
    def test_with_renames(self, ex):
        rows = run(ex, "MATCH (u:USER) WITH u.name AS who RETURN who")
        assert rows.columns == ["who"]

    def test_with_drops_variables(self, ex):
        with pytest.raises(CypherRuntimeError):
            run(ex, "MATCH (u:USER) WITH u.name AS who RETURN u")

    def test_distinct(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) RETURN DISTINCT u.name")
        assert len(rows) == 2

    def test_with_where(self, ex):
        rows = run(ex, "MATCH (u:USER) WITH u.age AS a WHERE a > 27 RETURN a")
        assert rows.rows == [(30,)]

    def test_order_by(self, ex):
        rows = run(ex, "MATCH (u:USER) RETURN u.age ORDER BY u.age DESC")
        assert [r[0] for r in rows.rows] == [30, 25]
        assert rows.ordered

    def test_order_by_alias(self, ex):
        rows = run(ex, "MATCH (u:USER) RETURN u.age AS a ORDER BY a")
        assert [r[0] for r in rows.rows] == [25, 30]

    def test_order_by_nulls_last(self, ex):
        rows = run(ex, "MATCH (n) RETURN n.year ORDER BY n.year")
        years = [r[0] for r in rows.rows]
        assert years == [2004, 2024, None, None]

    def test_skip_limit(self, ex):
        rows = run(ex, "UNWIND [1,2,3,4] AS x RETURN x SKIP 1 LIMIT 2")
        assert [r[0] for r in rows.rows] == [2, 3]

    def test_negative_limit_rejected(self, ex):
        with pytest.raises(CypherSyntaxError):
            run(ex, "RETURN 1 LIMIT -1")

    def test_duplicate_column_rejected(self, ex):
        with pytest.raises(CypherSyntaxError):
            run(ex, "RETURN 1 AS x, 2 AS x")

    def test_multi_key_order(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) "
                       "RETURN u.name AS n, r.rating AS s ORDER BY n, s DESC")
        assert rows.rows == [("Alice", 10), ("Alice", 7), ("Bob", 9)]


class TestAggregation:
    def test_count_star(self, ex):
        rows = run(ex, "MATCH (n) RETURN count(*) AS c")
        assert rows.rows == [(4,)]

    def test_count_star_on_empty(self, ex):
        rows = run(ex, "MATCH (n:GHOST) RETURN count(*) AS c")
        assert rows.rows == [(0,)]

    def test_grouping_keys(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) "
                       "RETURN u.name AS who, count(*) AS c ORDER BY who")
        assert rows.rows == [("Alice", 2), ("Bob", 1)]

    def test_count_ignores_nulls(self, ex):
        rows = run(ex, "MATCH (n) RETURN count(n.year) AS c")
        assert rows.rows == [(2,)]

    def test_sum_avg(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) "
                       "RETURN sum(r.rating) AS s, avg(r.rating) AS a")
        assert rows.rows[0][0] == 26
        assert rows.rows[0][1] == pytest.approx(26 / 3)

    def test_min_max(self, ex):
        rows = run(ex, "MATCH (u:USER) RETURN min(u.age) AS lo, max(u.age) AS hi")
        assert rows.rows == [(25, 30)]

    def test_min_of_nothing_is_null(self, ex):
        rows = run(ex, "MATCH (n:GHOST) RETURN min(n.x) AS m")
        assert rows.rows == [(None,)]

    def test_collect(self, ex):
        rows = run(ex, "MATCH (u:USER) RETURN collect(u.name) AS names")
        assert sorted(rows.rows[0][0]) == ["Alice", "Bob"]

    def test_collect_distinct(self, ex):
        rows = run(ex, "MATCH (u:USER)-[r:LIKE]->(m) "
                       "RETURN collect(DISTINCT u.name) AS names")
        assert sorted(rows.rows[0][0]) == ["Alice", "Bob"]

    def test_aggregate_in_expression(self, ex):
        rows = run(ex, "MATCH (u:USER) RETURN count(*) + 1 AS c")
        assert rows.rows == [(3,)]

    def test_stdev(self, ex):
        rows = run(ex, "UNWIND [2, 4] AS x RETURN stDev(x) AS s, stDevP(x) AS p")
        assert rows.rows[0][0] == pytest.approx(2 ** 0.5)
        assert rows.rows[0][1] == pytest.approx(1.0)

    def test_aggregation_with_zero_groups(self, ex):
        rows = run(ex, "MATCH (n:GHOST) RETURN n.name AS k, count(*) AS c")
        assert len(rows) == 0


class TestUnion:
    def test_union_dedups(self, ex):
        rows = run(ex, "RETURN 1 AS x UNION RETURN 1 AS x")
        assert rows.rows == [(1,)]

    def test_union_all_keeps_duplicates(self, ex):
        rows = run(ex, "RETURN 1 AS x UNION ALL RETURN 1 AS x")
        assert len(rows) == 2

    def test_union_column_mismatch(self, ex):
        with pytest.raises(CypherSyntaxError):
            run(ex, "RETURN 1 AS x UNION RETURN 1 AS y")


class TestCall:
    def test_db_labels(self, ex):
        rows = run(ex, "CALL db.labels() YIELD label RETURN label")
        assert [r[0] for r in rows.rows] == ["CLASSIC", "MOVIE", "USER"]

    def test_yield_alias(self, ex):
        rows = run(ex, "CALL db.labels() YIELD label AS l RETURN l")
        assert rows.columns == ["l"]

    def test_relationship_types(self, ex):
        rows = run(ex, "CALL db.relationshipTypes() YIELD relationshipType "
                       "RETURN relationshipType")
        assert [r[0] for r in rows.rows] == ["KNOWS", "LIKE"]

    def test_property_keys(self, ex):
        rows = run(ex, "CALL db.propertyKeys() YIELD propertyKey RETURN propertyKey")
        assert "rating" in [r[0] for r in rows.rows]

    def test_unknown_procedure(self, ex):
        with pytest.raises(CypherRuntimeError):
            run(ex, "CALL db.nope() YIELD x RETURN x")

    def test_unknown_yield_column(self, ex):
        with pytest.raises(CypherSyntaxError):
            run(ex, "CALL db.labels() YIELD nope RETURN nope")


class TestPipelines:
    def test_figure2_pipeline(self, ex):
        """The paper's Figure 2 second query."""
        rows = run(
            ex,
            "MATCH (p:USER)-[r:LIKE]->(m:MOVIE) WHERE p.name = 'Alice' AND "
            "r.rating >= 8 UNWIND m.genre AS LikedGenre "
            "WITH DISTINCT m.name AS MovieName, m, LikedGenre "
            "RETURN MovieName, m.year AS year",
        )
        assert rows.columns == ["MovieName", "year"]
        assert all(row == ("Notebook", 2004) for row in rows.rows)
        assert len(rows) == 2  # one per distinct genre

    def test_figure17_unwind_then_match(self, ex):
        rows = run(ex, "UNWIND [1,2,3] AS a0 MATCH (n:USER {id: 0}) RETURN a0")
        assert [r[0] for r in rows.rows] == [1, 2, 3]
