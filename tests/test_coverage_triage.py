"""Second observability tier: coverage, triage signatures, flight recorder.

Covers the three invariants the subsystem guarantees:

* switching coverage/triage/recording on leaves campaign results
  byte-identical (no RNG draws, no control-flow changes);
* grid-scope coverage/triage snapshots and the bundle set are identical
  for ``jobs=1`` and ``jobs=2`` (deterministic barrier merges);
* every recorded bundle replays to exactly the recorded expected/actual
  outcomes (``repro replay``).
"""

import json
import random

import pytest

from repro.cli import main
from repro.core.reporting import campaign_to_dict, load_event_stream
from repro.cypher.parser import parse_query
from repro.experiments.campaign import (
    TESTER_NAMES,
    distinct_bug_summary,
    run_campaign_grid,
    run_tool_campaign,
)
from repro.obs import (
    CellCoverage,
    CellTriage,
    coverage_curve,
    load_bundle,
    merge_coverage_snapshots,
    merge_triage_snapshots,
    normalize_detail,
    query_feature_tags,
    replay_bundle,
    signature_for,
)
from repro.runtime.results import BugReport

SMOKE = dict(budget_seconds=6.0, gate_scale=0.05)


def report(engine="falkordb", kind="logic", detail="row count mismatch: "
           "expected 7, got 4", query="MATCH (n:L0) RETURN n.k1",
           fault_id=None):
    return BugReport(
        tester="GQS", engine=engine, kind=kind, detail=detail,
        query_text=query, fault_id=fault_id, sim_time=1.0,
    )


class TestFeatureTags:
    def test_clauses_functions_operators_shapes_depth(self):
        query = parse_query(
            "MATCH (n:L0)-[r:T0]->(m:L1:L2) WHERE n.k1 > 3 AND m.k2 IS NULL "
            "RETURN abs(n.k1) AS a ORDER BY a"
        )
        tags = set(query_feature_tags(query))
        assert "clause:MATCH" in tags and "clause:RETURN" in tags
        assert "clause:WHERE" in tags and "clause:ORDER BY" in tags
        assert "function:abs" in tags
        assert "operator:>" in tags and "operator:AND" in tags
        assert "operator:IS NULL" in tags
        assert "shape:path-1" in tags and "shape:typed-rel" in tags
        assert "shape:multi-label-node" in tags
        assert any(tag.startswith("depth:") for tag in tags)

    def test_repeats_preserved_for_counting(self):
        query = parse_query("MATCH (a:L0), (b:L0) RETURN a, b")
        tags = query_feature_tags(query)
        assert tags.count("shape:labeled-node") == 2


class TestSignatures:
    def test_fault_id_is_the_white_box_signature(self):
        assert (signature_for(report(fault_id="falkordb-L3"))
                == "falkordb:falkordb-L3")

    def test_fingerprint_collapses_literal_differences(self):
        a = report(detail="row count mismatch: expected 7, got 4")
        b = report(detail="row count mismatch: expected 12, got 9")
        assert signature_for(a) == signature_for(b)

    def test_fingerprint_separates_structurally_different_failures(self):
        a = report(detail="row count mismatch: expected 7, got 4")
        b = report(kind="error", detail="CypherRuntimeError: boom")
        assert signature_for(a) != signature_for(b)

    def test_normalize_detail(self):
        assert normalize_detail("error", "CypherTypeError: bad 'x'") == \
            "CypherTypeError"
        shape = normalize_detail("logic", "expected 7 rows, got 'abc'")
        assert "7" not in shape and "abc" not in shape


class TestCellAccumulators:
    def test_coverage_curve_grows_monotonically(self):
        cov = CellCoverage("GQS", "falkordb", 0)
        cov.observe(parse_query("MATCH (n) RETURN n"))
        cov.observe(parse_query("MATCH (n) RETURN n"))  # nothing new
        cov.observe(parse_query("MATCH (n:L0) WHERE n.k1 > 1 RETURN n"))
        snap = cov.snapshot()
        assert snap["queries"] == 3
        counts = [n for _q, n in snap["curve"]]
        assert counts == sorted(counts)
        # The repeat query added no curve point.
        assert [q for q, _n in snap["curve"]] == [1, 3]

    def test_triage_first_seen_and_counts(self):
        triage = CellTriage("GQS", "falkordb", 7)
        sig1, new1 = triage.add(report(fault_id="falkordb-L1"), 5)
        sig2, new2 = triage.add(report(fault_id="falkordb-L1"), 9)
        assert new1 and not new2 and sig1 == sig2
        entry = triage.snapshot()["bugs"][sig1]
        assert entry["count"] == 2
        assert entry["first_seen"]["seed"] == 7
        assert entry["first_seen"]["query"] == 5


class TestMerges:
    def cell_snapshots(self):
        snaps = []
        for seed, text in ((0, "MATCH (n) RETURN n"),
                           (1, "MATCH (n:L0)-[r:T0]->(m) RETURN m")):
            cov = CellCoverage("GQS", "falkordb", seed)
            cov.observe(parse_query(text))
            snaps.append(cov.snapshot())
        return snaps

    def test_coverage_merge_is_order_independent(self):
        snaps = self.cell_snapshots()
        merged = merge_coverage_snapshots(snaps)
        shuffled = list(snaps)
        random.Random(3).shuffle(shuffled)
        assert merge_coverage_snapshots(shuffled) == merged
        assert merged["queries"] == 2
        # Grid first-seen indices run over the concatenated query sequence.
        assert all(first >= 1 for _c, first in merged["features"].values())

    def test_triage_merge_sums_counts_and_sorts_testers(self):
        t1 = CellTriage("GQS", "falkordb", 0)
        t1.add(report(fault_id="falkordb-L1"), 1)
        t2 = CellTriage("GRev", "falkordb", 1)
        t2.add(report(fault_id="falkordb-L1"), 2)
        t2.add(report(fault_id="falkordb-L1"), 3)
        merged = merge_triage_snapshots([t2.snapshot(), t1.snapshot()])
        assert merged["distinct"] == 1 and merged["occurrences"] == 3
        entry = merged["bugs"]["falkordb:falkordb-L1"]
        assert entry["testers"] == ["GQS", "GRev"]
        # Sorted cell order: GQS seed 0 wins first-seen.
        assert entry["first_seen"]["seed"] == 0


class TestCoverageSchema:
    def snap(self):
        cov = CellCoverage("GQS", "falkordb", 0)
        cov.observe(parse_query("MATCH (n) RETURN n"))
        return cov.snapshot()

    def test_snapshots_are_stamped_with_current_version(self):
        from repro.obs import COVERAGE_SCHEMA_VERSION

        snap = self.snap()
        assert snap["schema"] == COVERAGE_SCHEMA_VERSION
        assert merge_coverage_snapshots([snap])["schema"] == (
            COVERAGE_SCHEMA_VERSION
        )

    def test_unstamped_snapshots_accepted_for_back_compat(self):
        # Event logs written before the stamp carry no ``schema`` key.
        legacy = {k: v for k, v in self.snap().items() if k != "schema"}
        assert merge_coverage_snapshots([legacy])["queries"] == 1
        assert coverage_curve(legacy) == [(1, coverage_curve(legacy)[0][1])]

    def test_merge_rejects_mismatched_version_naming_the_cell(self):
        from repro.obs import CoverageSchemaError

        good, bad = self.snap(), self.snap()
        bad.update(schema=99, tester="GRev", seed=7)
        with pytest.raises(CoverageSchemaError) as exc_info:
            merge_coverage_snapshots([good, bad])
        error = exc_info.value
        assert error.cell == "GRev/falkordb/7"
        assert error.found == 99 and error.expected == 1
        assert "GRev/falkordb/7" in str(error)
        assert isinstance(error, ValueError)  # pre-existing handlers still catch

    def test_curve_rejects_mismatched_version(self):
        from repro.obs import CoverageSchemaError

        bad = dict(self.snap(), schema="2.0")
        with pytest.raises(CoverageSchemaError, match="falkordb"):
            coverage_curve(bad)


class TestRngInvariance:
    def test_results_byte_identical_with_tier_on(self, tmp_path):
        plain = run_tool_campaign("GQS", "falkordb", seed=0, **SMOKE)
        instrumented = run_tool_campaign(
            "GQS", "falkordb", seed=0, record_coverage=True,
            record_triage=True, bundle_dir=tmp_path / "bundles", **SMOKE,
        )
        assert (json.dumps(campaign_to_dict(plain), sort_keys=True)
                == json.dumps(campaign_to_dict(instrumented), sort_keys=True))


class TestGridDeterminism:
    def run_grid(self, tmp_path, jobs):
        path = tmp_path / f"jobs{jobs}.jsonl"
        bundles = tmp_path / f"bundles{jobs}"
        results = run_campaign_grid(
            ("GQS", "GRev"), ("falkordb",), seeds=(0, 1), derive_seeds=True,
            jobs=jobs, events_path=path, record_coverage=True,
            record_triage=True, bundle_dir=bundles, **SMOKE,
        )
        events = load_event_stream(path)
        grid = {
            kind: [e["snapshot"] for e in events
                   if e.get("event") == kind and e.get("scope") == "grid"]
            for kind in ("coverage", "triage")
        }
        assert len(grid["coverage"]) == 1 and len(grid["triage"]) == 1
        return results, grid, sorted(p.name for p in bundles.glob("*.json"))

    def test_jobs_1_and_2_merge_identically(self, tmp_path):
        results1, grid1, bundles1 = self.run_grid(tmp_path, 1)
        results2, grid2, bundles2 = self.run_grid(tmp_path, 2)
        fp = lambda rs: {k: campaign_to_dict(v) for k, v in rs.items()}
        assert fp(results1) == fp(results2)
        assert grid1 == grid2
        assert bundles1 == bundles2 and bundles1


class TestFlightRecorder:
    @pytest.fixture(scope="class")
    def smoke_grid(self, tmp_path_factory):
        """Fault-enabled 6-tester × 2-engine grid with the recorder on."""
        root = tmp_path_factory.mktemp("recorder")
        bundles = root / "bundles"
        run_campaign_grid(
            TESTER_NAMES, ("neo4j", "falkordb"), seeds=(0,), jobs=2,
            events_path=root / "events.jsonl", record_coverage=True,
            record_triage=True, bundle_dir=bundles, **SMOKE,
        )
        return root, sorted(bundles.glob("*.json"))

    def test_every_bundle_replays_exactly(self, smoke_grid):
        _root, bundles = smoke_grid
        assert bundles, "smoke grid found no bugs to record"
        for path in bundles:
            outcome = replay_bundle(path)
            assert outcome.reproduced, f"{path.name}: {outcome.describe()}"

    def test_bundles_are_self_contained(self, smoke_grid):
        _root, bundles = smoke_grid
        bundle = load_bundle(bundles[0])
        for field in ("format", "signature", "tester", "engine", "cell_seed",
                      "engine_spec", "schema", "graph", "query", "expected",
                      "actual"):
            assert field in bundle
        assert bundle["format"] == "gqs-bundle/1"

    def test_replay_cli_reports_success(self, smoke_grid, capsys):
        _root, bundles = smoke_grid
        assert main(["replay", str(bundles[0])]) == 0
        out = capsys.readouterr().out
        assert "matches recording" in out

    def test_coverage_and_bugs_cli_render(self, smoke_grid, capsys):
        root, _bundles = smoke_grid
        assert main(["coverage", str(root / "events.jsonl")]) == 0
        out = capsys.readouterr().out
        for tester in TESTER_NAMES:
            assert f"== {tester}: feature coverage" in out
        assert "coverage over time" in out

        assert main(["bugs", str(root / "events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "distinct bug(s)" in out
        assert "repro bundle(s):" in out

    def test_distinct_bug_summary_dedupes_reports(self, smoke_grid):
        root, _bundles = smoke_grid
        results = run_campaign_grid(
            TESTER_NAMES, ("neo4j", "falkordb"), seeds=(0,), jobs=1,
            resume_path=root / "events.jsonl", **SMOKE,
        )
        summary = distinct_bug_summary(results)
        for tester, entry in summary.items():
            assert entry["distinct"] <= entry["reports"]
            assert entry["distinct"] == len(entry["signatures"])
        assert summary["GQS"]["distinct"] > 0


class TestMixedEventResume:
    def full_log(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        first = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0, 1), derive_seeds=True,
            jobs=1, events_path=path, record_metrics=True,
            record_coverage=True, record_triage=True,
            bundle_dir=tmp_path / "bundles", **SMOKE,
        )
        kinds = {e["event"] for e in load_event_stream(path)}
        # One JSONL holding every observability kind at once.
        assert {"span", "metrics", "coverage", "triage",
                "bundle", "cell_complete"} <= kinds
        return path, first

    def test_resume_tolerates_all_event_kinds(self, tmp_path):
        path, first = self.full_log(tmp_path)
        out = tmp_path / "resumed.jsonl"
        resumed = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0, 1), derive_seeds=True,
            jobs=1, events_path=out, resume_path=path, **SMOKE,
        )
        fp = lambda rs: {k: campaign_to_dict(v) for k, v in rs.items()}
        assert fp(resumed) == fp(first)
        events = load_event_stream(out)
        # Nothing re-ran...
        assert not [e for e in events if e["event"] == "campaign_start"]
        # ...yet the grid rollups were rebuilt from the resumed snapshots.
        assert [e for e in events
                if e["event"] == "coverage" and e.get("scope") == "grid"]
        assert [e for e in events
                if e["event"] == "triage" and e.get("scope") == "grid"]

    def test_resume_tolerates_truncated_last_line(self, tmp_path):
        path, first = self.full_log(tmp_path)
        raw = path.read_text(encoding="utf-8")
        # Tear the final line mid-JSON, as a kill -9 would.
        path.write_text(raw[: len(raw) - 25], encoding="utf-8")
        resumed = run_campaign_grid(
            ("GQS",), ("falkordb",), seeds=(0, 1), derive_seeds=True,
            jobs=1, resume_path=path, **SMOKE,
        )
        fp = lambda rs: {k: campaign_to_dict(v) for k, v in rs.items()}
        assert fp(resumed) == fp(first)


class TestNoDataMessages:
    def test_trace_names_the_record_spans_switch(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(json.dumps({"event": "cell_complete"}) + "\n")
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no span events" in out
        assert "EventLog(record_spans=True)" in out

    def test_stats_names_the_metrics_switch(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(json.dumps({"event": "cell_complete"}) + "\n")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no metrics events" in out and "--metrics" in out

    def test_coverage_and_bugs_without_events_say_so(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(json.dumps({"event": "cell_complete"}) + "\n")
        assert main(["coverage", str(path)]) == 0
        assert "--coverage" in capsys.readouterr().out
        assert main(["bugs", str(path)]) == 0
        assert "--triage" in capsys.readouterr().out
