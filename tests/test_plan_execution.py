"""Tests for the compiled operator-pipeline execution core (repro.engine.plan).

The contract under test is the dual-mode differential one: the compiled
pipeline must be observationally identical to the tree-walking reference
interpreter — same ``ResultSet``s, same error types, same fault
interactions — while the plan cache, the graph indexes, and the mode
threading stay invisible to campaign results.  The headline property test
mirrors the printer→parser idempotence test of
``test_roundtrip_properties.TestSynthesizedQueryRoundTrip``: 200 queries
across 10 seeds over the population the campaigns actually emit.
"""

import random

import pytest

from repro.core import QuerySynthesizer
from repro.core.runner import synthesizer_config_for
from repro.cypher import print_query
from repro.cypher.parser import parse_query
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherError, PlanDivergenceError
from repro.engine.plan import PlanCache
from repro.gdb import create_engine
from repro.gdb.engines import EngineSpec
from repro.graph import GraphGenerator
from repro.graph.model import PropertyGraph
from repro.obs.coverage import query_feature_tags


def _outcome(engine, text):
    """(kind, payload) of executing *text*: rows or the error type name."""
    try:
        result = engine.execute(text)
    except CypherError as exc:
        return ("error", type(exc).__name__)
    return (
        "rows",
        (list(result.columns), result.to_table(engine.dialect)),
    )


def _mode_pair(name, mode, **kwargs):
    """(interpreted, *mode*) engine pair of the same simulated engine."""
    return (
        create_engine(name, execution_mode="interpreted", **kwargs),
        create_engine(name, execution_mode=mode, **kwargs),
    )


class TestCompiledMatchesInterpreted:
    """The 200-query synthesized differential property test (satellite)."""

    def test_200_synthesized_queries_agree(self):
        checked = 0
        for seed in range(10):
            schema, graph = GraphGenerator(seed=seed).generate_with_schema()
            name = "neo4j" if seed % 2 else "kuzu"
            interpreted, compiled = _mode_pair(
                name, "compiled", faults_enabled=False
            )
            interpreted.load_graph(graph, schema)
            compiled.load_graph(graph, schema)
            synthesizer = QuerySynthesizer(
                graph, rng=random.Random(seed),
                config=synthesizer_config_for(interpreted),
            )
            for _ in range(20):
                text = print_query(synthesizer.synthesize().query)
                assert _outcome(compiled, text) == _outcome(
                    interpreted, text
                ), text
                checked += 1
        assert checked == 200

    def test_dual_mode_runs_the_same_population_clean(self):
        # Dual mode re-checks every query internally; any divergence would
        # escape as PlanDivergenceError (it is not a CypherError, so
        # _outcome would not swallow it).
        schema, graph = GraphGenerator(seed=3).generate_with_schema()
        interpreted, dual = _mode_pair("falkordb", "dual",
                                       faults_enabled=False)
        interpreted.load_graph(graph, schema)
        dual.load_graph(graph, schema)
        synthesizer = QuerySynthesizer(
            graph, rng=random.Random(3),
            config=synthesizer_config_for(interpreted),
        )
        for _ in range(30):
            text = print_query(synthesizer.synthesize().query)
            assert _outcome(dual, text) == _outcome(interpreted, text), text
        assert dual._plan_cache.divergences == 0


class TestIndexCorrectnessUnderFaults:
    """Indexes and cached adjacency must not perturb fault interactions."""

    def test_compiled_matches_interpreted_with_every_gate_open(self):
        # gate_scale=0.0 opens every fault gate, so the stream exercises
        # crash, session-accumulation, and logic faults; both engines see
        # the identical query sequence, so fault state must stay in
        # lockstep — including which fault fired and the post-crash state.
        schema, graph = GraphGenerator(seed=5).generate_with_schema()
        interpreted, compiled = _mode_pair("falkordb", "compiled",
                                           gate_scale=0.0)
        interpreted.load_graph(graph, schema)
        compiled.load_graph(graph, schema)
        synthesizer = QuerySynthesizer(
            graph, rng=random.Random(5),
            config=synthesizer_config_for(interpreted),
        )
        for index in range(40):
            text = print_query(synthesizer.synthesize().query)
            assert _outcome(compiled, text) == _outcome(
                interpreted, text
            ), f"query {index}: {text}"
            left = interpreted.last_fired_fault
            right = compiled.last_fired_fault
            assert (left.fault_id if left else None) == (
                right.fault_id if right else None
            )
            assert compiled.crashed == interpreted.crashed
            if interpreted.crashed:
                interpreted.restart()
                compiled.restart()

    def test_indexes_see_writes(self):
        # A write between two identical reads must invalidate the label /
        # property indexes and the cached adjacency the compiled scan and
        # expand operators consult.
        read = (
            "MATCH (a:Person {id: 0})-[r]->(b) "
            "RETURN a.id, b.id ORDER BY b.id"
        )
        interpreted, compiled = _mode_pair("neo4j", "compiled",
                                           faults_enabled=False)
        graph = PropertyGraph()
        graph.add_node(["Person"], {"id": 0})
        graph.add_node(["Person"], {"id": 1})
        graph.add_relationship(0, 1, "KNOWS", {"id": 0})
        for engine in (interpreted, compiled):
            engine.load_graph(graph)
            engine.execute(read)  # warm the indexes and adjacency cache
            engine.execute(
                "MATCH (a {id: 0}), (b {id: 1}) CREATE (a)-[:KNOWS]->(b)"
            )
            engine.execute("CREATE (c:Person {id: 2})")
        after = _outcome(compiled, read)
        assert after == _outcome(interpreted, read)
        assert after[0] == "rows" and len(after[1][1]) == 2

    def test_expand_pairs_invalidated_by_structural_mutation(self):
        graph = PropertyGraph()
        graph.add_node()
        graph.add_node()
        graph.add_relationship(0, 1, "KNOWS")
        first = graph.expand_pairs(0, "out")
        assert [far for _rel, far in first] == [1]
        graph.add_node()
        graph.add_relationship(0, 2, "KNOWS")
        assert [far for _rel, far in graph.expand_pairs(0, "out")] == [1, 2]

    def test_expand_pairs_orders_like_the_matcher(self):
        # "both" enumerates outgoing before incoming, each id-sorted, and
        # a self-loop appears once (the outgoing side).
        graph = PropertyGraph()
        for _ in range(3):
            graph.add_node()
        graph.add_relationship(0, 1, "A", rel_id=3)
        graph.add_relationship(2, 0, "A", rel_id=1)
        graph.add_relationship(0, 0, "A", rel_id=2)
        pairs = graph.expand_pairs(0, "both")
        assert [(rel.id, far) for rel, far in pairs] == [
            (2, 0), (3, 1), (1, 2)
        ]


class TestPlanCacheKeying:
    def test_identical_text_hits_after_one_compile(self):
        engine = create_engine("falkordb", faults_enabled=False,
                               execution_mode="compiled")
        graph = PropertyGraph()
        graph.add_node(["Person"], {"id": 0})
        engine.load_graph(graph)
        text = "MATCH (a:Person) RETURN a.id"
        engine.execute(text)
        assert engine._plan_cache.compiles == 1
        engine.execute(text)
        assert engine._plan_cache.compiles == 1
        assert engine._plan_cache.hits == 1

    def test_cache_survives_load_graph(self):
        # Plans resolve the graph through the execution context, so the
        # cache is engine-lifetime state: reloading (the campaign does it
        # per generated graph) must not recompile known shapes.
        engine = create_engine("falkordb", faults_enabled=False,
                               execution_mode="compiled")
        graph = PropertyGraph()
        graph.add_node(["Person"], {"id": 0})
        engine.load_graph(graph)
        text = "MATCH (a:Person) RETURN a.id"
        engine.execute(text)
        compiles = engine._plan_cache.compiles
        engine.load_graph(graph)
        engine.execute(text)
        assert engine._plan_cache.compiles == compiles

    def test_distinct_shapes_get_distinct_fingerprints(self):
        texts = [
            "MATCH (a:Person) RETURN a.id",
            "MATCH (a:Person)-[r]->(b) RETURN a.id",
            "MATCH (a:Person) WHERE a.id = 3 RETURN a.id",
            "MATCH (a:Person) RETURN count(a)",
        ]
        keys = {
            PlanCache.fingerprint(query_feature_tags(parse_query(t)), t)
            for t in texts
        }
        assert len(keys) == len(texts)

    def test_same_shape_different_text_does_not_collide(self):
        # The fingerprint folds in the exact text: two queries sharing a
        # feature shape but differing in constants must never share a plan
        # slot (plans bake constants in at compile time).
        left = "MATCH (a:Person) WHERE a.id = 3 RETURN a.id"
        right = "MATCH (a:Person) WHERE a.id = 4 RETURN a.id"
        tags_left = query_feature_tags(parse_query(left))
        tags_right = query_feature_tags(parse_query(right))
        assert PlanCache.fingerprint(tags_left, left) != PlanCache.fingerprint(
            tags_right, right
        )


class TestDualModeContract:
    def _engine_with_wrong_plan(self, wrong_result=None, error=None):
        engine = create_engine("falkordb", faults_enabled=False,
                               execution_mode="dual")
        graph = PropertyGraph()
        graph.add_node(["Person"], {"id": 0})
        engine.load_graph(graph)

        class WrongPlan:
            is_fallback = False

            def execute(self, ctx):
                if error is not None:
                    raise error
                return wrong_result

        engine._plan_for = lambda tree, text: WrongPlan()
        return engine

    def test_result_divergence_raises_typed_error(self):
        engine = self._engine_with_wrong_plan(
            wrong_result=ResultSet(["a.id"], [(999,)])
        )
        with pytest.raises(PlanDivergenceError):
            engine.execute("MATCH (a:Person) RETURN a.id")
        assert engine._plan_cache.divergences == 1

    def test_error_shape_divergence_raises_typed_error(self):
        from repro.engine.errors import CypherRuntimeError

        engine = self._engine_with_wrong_plan(
            error=CypherRuntimeError("compiled-only failure")
        )
        with pytest.raises(PlanDivergenceError):
            engine.execute("MATCH (a:Person) RETURN a.id")

    def test_divergence_is_not_a_cypher_error(self):
        # Oracles catch CypherError and convert it into discrepancy
        # reports; a divergence is a bug in this codebase and must
        # propagate past every oracle.
        assert not issubclass(PlanDivergenceError, CypherError)

    def test_agreeing_dual_returns_interpreted_result(self):
        engine = create_engine("falkordb", faults_enabled=False,
                               execution_mode="dual")
        graph = PropertyGraph()
        graph.add_node(["Person"], {"id": 0})
        engine.load_graph(graph)
        result = engine.execute("MATCH (a:Person) RETURN a.id")
        assert result.to_table(engine.dialect) == [["0"]]


class TestModeThreading:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            create_engine("falkordb", execution_mode="vectorized")

    def test_engine_spec_round_trips_mode(self):
        spec = EngineSpec("kuzu", execution_mode="dual")
        engine = spec.create()
        assert engine.execution_mode == "dual"
        assert engine.spec()["execution_mode"] == "dual"

    def test_campaign_cell_carries_mode_into_worker_spec(self):
        from repro.runtime import CampaignCell, ParallelCampaignRunner

        cell = CampaignCell("GQS", "falkordb", 0, 1.0,
                            execution_mode="compiled")
        task = ParallelCampaignRunner(jobs=1)._task(cell)
        assert task["spec"]["execution_mode"] == "compiled"

    def test_cli_exposes_engine_mode(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["campaign", "--engine-mode", "dual"])
        assert args.engine_mode == "dual"
        args = parser.parse_args(["compare", "--engine-mode", "compiled"])
        assert args.engine_mode == "compiled"


class TestDualGridByteIdentity:
    """The acceptance invariant: a dual grid is byte-identical to an
    interpreted grid for any ``--jobs`` value, with zero divergences."""

    def test_dual_grid_matches_interpreted_for_any_jobs(self):
        import json

        from repro.core.reporting import campaign_to_dict
        from repro.experiments.campaign import run_campaign_grid

        def fingerprint(results):
            return json.dumps(
                {"|".join(map(str, key)): campaign_to_dict(result)
                 for key, result in results.items()},
                sort_keys=True,
            )

        def grid(mode, jobs):
            return run_campaign_grid(
                ("GQS",), ("falkordb",), seeds=(0, 1),
                budget_seconds=3.0, gate_scale=0.05, jobs=jobs,
                execution_mode=mode,
            )

        reference = fingerprint(grid("interpreted", 1))
        assert fingerprint(grid("dual", 1)) == reference
        assert fingerprint(grid("dual", 2)) == reference
