"""Unit tests for the state-aware synthesis subsystem (repro.synth.state).

Covers the shadow-state model, the valid-by-construction statement
builders, the state digest oracle, the state-corruption fault effects,
and the satellite surfaces: write-fallback plan counters, write-clause
coverage tags, and the stateful adaptive arms.
"""

import random

import pytest

from repro.core.runner import synthesizer_config_for
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.gdb import create_engine
from repro.gdb.catalog import all_faults, gqs_scope_faults
from repro.gdb.state_effects import StateEffect
from repro.graph import GraphGenerator
from repro.synth.state import (
    StatefulGQSTester,
    StatefulSynthesizer,
    StateModel,
    compare_states,
    state_digest,
    state_summary,
)
from repro.synth.state.statements import build_statement, valid_kinds


def fresh_graph(seed=3):
    _schema, graph = GraphGenerator(seed=seed).generate_with_schema()
    return graph


def make_model(graph=None):
    return StateModel(graph if graph is not None else fresh_graph())


class TestStateOracle:
    def test_digest_deterministic(self):
        graph = fresh_graph()
        assert state_digest(graph) == state_digest(graph.copy())

    def test_digest_changes_on_mutation(self):
        graph = fresh_graph()
        mutated = graph.copy()
        mutated.add_node(frozenset(["X"]), {"id": 10**6})
        assert state_digest(graph) != state_digest(mutated)

    def test_summary_shape(self):
        graph = fresh_graph()
        summary = state_summary(graph)
        assert summary["nodes"] == graph.node_count
        assert summary["relationships"] == graph.relationship_count
        assert summary["digest"] == state_digest(graph)

    def test_compare_states_none_on_identical(self):
        graph = fresh_graph()
        assert compare_states(graph, graph.copy()) is None

    def test_compare_states_reports_counts_and_digest(self):
        graph = fresh_graph()
        mutated = graph.copy()
        mutated.add_node(frozenset(), {"id": 10**6})
        detail = compare_states(mutated, graph)
        assert "node count" in detail
        assert "state digest" in detail


class TestStateModel:
    def test_shadow_is_a_copy(self):
        graph = fresh_graph()
        model = StateModel(graph)
        model.shadow.add_node(frozenset(), {"id": model.next_id()})
        assert model.shadow.node_count == graph.node_count + 1

    def test_minted_names_never_collide_with_generator_vocabulary(self):
        model = make_model()
        assert model.mint_label() not in model.shadow.labels()
        assert model.mint_type() not in model.shadow.relationship_types()

    def test_next_id_is_fresh(self):
        model = make_model()
        existing = {
            element.properties.get("id")
            for element in list(model.shadow.nodes())
            + list(model.shadow.relationships())
        }
        assert model.next_id() not in existing

    def test_valid_kinds_on_empty_state(self):
        from repro.graph.model import PropertyGraph

        model = StateModel(PropertyGraph())
        assert valid_kinds(model) == ["create", "merge"]
        assert model.pick_node(random.Random(0)) is None


class TestStatementBuilders:
    @pytest.mark.parametrize("seed", range(6))
    def test_statements_valid_against_evolving_state(self, seed):
        """400 statements across seeds: every one executes cleanly on the
        shadow, round-trips through the printer, and preserves the unique
        ``id`` pin-property invariant the read synthesizer depends on."""
        rng = random.Random(seed)
        model = make_model(fresh_graph(seed))
        for _ in range(400 // 6 + 1):
            kinds = valid_kinds(model)
            kind = rng.choice(kinds)
            tree = build_statement(kind, model, rng)
            if tree is None:
                continue
            printed = print_query(tree)
            assert print_query(parse_query(printed)) == printed
            model.apply(tree)  # raises on an invalid statement
            # Pin-predicate invariant: "id" unique within each element
            # class (nodes and relationships are separate namespaces).
            node_ids = [
                node.properties.get("id") for node in model.shadow.nodes()
            ]
            rel_ids = [
                rel.properties.get("id")
                for rel in model.shadow.relationships()
            ]
            assert None not in node_ids and None not in rel_ids, printed
            assert len(node_ids) == len(set(node_ids)), printed
            assert len(rel_ids) == len(set(rel_ids)), printed

    def test_lockstep_digest_across_two_models(self):
        """Replaying one statement stream on two copies of the same graph
        reaches the same digest — the soundness basis of the oracle."""
        graph = fresh_graph(5)
        model_a = StateModel(graph)
        model_b = StateModel(graph)
        rng = random.Random(9)
        for _ in range(40):
            tree = build_statement(
                rng.choice(valid_kinds(model_a)), model_a, rng
            )
            if tree is None:
                continue
            model_a.apply(tree)
            model_b.apply(parse_query(print_query(tree)))
            assert state_digest(model_a.shadow) == state_digest(model_b.shadow)


class TestStatefulSynthesizer:
    def _synthesizer(self, ratio, seed=4):
        graph = fresh_graph(seed)
        engine = create_engine("neo4j")
        model = StateModel(graph)
        return StatefulSynthesizer(
            model,
            random.Random(seed),
            config=synthesizer_config_for(engine),
            stateful_ratio=ratio,
        ), model

    def test_ratio_one_yields_only_writes(self):
        synthesizer, model = self._synthesizer(1.0)
        for _ in range(30):
            proposal = synthesizer.propose()
            assert proposal.is_write
            model.apply(proposal.query)

    def test_ratio_zero_yields_only_reads_on_nonempty_state(self):
        synthesizer, _model = self._synthesizer(0.0)
        for _ in range(20):
            proposal = synthesizer.propose()
            assert not proposal.is_write
            assert proposal.expected is not None

    def test_deterministic_given_seed(self):
        first, model_a = self._synthesizer(0.7, seed=12)
        second, model_b = self._synthesizer(0.7, seed=12)
        for _ in range(25):
            pa, pb = first.propose(), second.propose()
            assert pa.text == pb.text
            assert pa.statement_kind == pb.statement_kind
            if pa.is_write:
                model_a.apply(pa.query)
                model_b.apply(pb.query)


class TestStateEffects:
    """Each state-corruption model leaves a divergence the oracle catches."""

    def _setup(self, statement):
        graph = fresh_graph(7)
        engine_graph = graph.copy()
        shadow = graph.copy()
        from repro.engine.executor import Executor

        tree = parse_query(statement)
        before = engine_graph.copy()
        Executor(engine_graph).execute(tree)
        Executor(shadow).execute(parse_query(statement))
        assert compare_states(engine_graph, shadow) is None
        return engine_graph, before, shadow, tree

    def _statement_for(self, kind):
        graph = fresh_graph(7)
        node = graph.nodes_sorted()[0]
        node_id = node.properties["id"]
        key = sorted(k for k in node.properties if k != "id")
        if kind == "set":
            return f"MATCH (x {{id: {node_id}}}) SET x.wkey9 = 41"
        if kind == "remove":
            label = sorted(node.labels)[0]
            return f"MATCH (x {{id: {node_id}}}) REMOVE x:{label}"
        if kind == "merge":
            return "MERGE (m:WLabel9 {id: 1000000, wkey9: 1})"
        if kind == "delete":
            return f"MATCH (x {{id: {node_id}}}) DETACH DELETE x"
        raise AssertionError(kind)

    def test_lost_set_reverts_the_write(self):
        engine_graph, before, shadow, tree = self._setup(
            self._statement_for("set")
        )
        StateEffect.lost_set(engine_graph, before, tree, 0)
        assert compare_states(engine_graph, shadow) is not None

    def test_remove_noop_restores_label(self):
        engine_graph, before, shadow, tree = self._setup(
            self._statement_for("remove")
        )
        StateEffect.remove_noop(engine_graph, before, tree, 0)
        assert compare_states(engine_graph, shadow) is not None

    def test_phantom_merge_duplicates_node(self):
        engine_graph, before, shadow, tree = self._setup(
            self._statement_for("merge")
        )
        StateEffect.phantom_merge(engine_graph, before, tree, 0)
        detail = compare_states(engine_graph, shadow)
        assert detail is not None and "node count" in detail

    def test_dangling_delete_resurrects_tombstone(self):
        engine_graph, before, shadow, tree = self._setup(
            self._statement_for("delete")
        )
        StateEffect.dangling_delete(engine_graph, before, tree, 0)
        assert compare_states(engine_graph, shadow) is not None

    def test_state_faults_in_catalog_but_outside_paper_scope(self):
        state_faults = [f for f in all_faults() if f.is_state]
        assert len(state_faults) == 5
        assert {f.gdb for f in state_faults} == {
            "neo4j", "memgraph", "kuzu", "falkordb"
        }
        assert not any(f.is_state for f in gqs_scope_faults())


class TestWriteFallbackCounter:
    def test_compiled_mode_counts_write_fallbacks(self):
        engine = create_engine("neo4j", execution_mode="compiled")
        engine.load_graph(fresh_graph())
        engine.execute(parse_query("CREATE (n:X {id: 1000001})"))
        stats = engine._plan_cache.drain()
        assert stats.get("write_fallbacks", 0) >= 1
        # drain() resets the counter.
        assert engine._plan_cache.write_fallbacks == 0

    def test_dual_mode_silent_on_writes(self):
        engine = create_engine("neo4j", execution_mode="dual")
        engine.load_graph(fresh_graph())
        engine.execute(parse_query("CREATE (n:X {id: 1000001})"))
        # Dual mode flushes no plan counters at all (its observable stream
        # must match an interpreted run's); the write must not raise a
        # divergence either.
        assert engine._plan_cache.write_fallbacks == 0

    def test_render_shows_write_fallbacks(self):
        from repro.obs.render import _render_plans

        lines = _render_plans({"plan.write_fallbacks": 3})
        assert any("write fallbacks" in line for line in lines)
        silent = _render_plans({"plan.cache_hits": 2})
        assert not any("write fallbacks" in line for line in silent)


class TestWriteCoverageTags:
    def test_write_family_tags(self):
        from repro.obs.coverage import query_feature_tags

        tags = query_feature_tags(parse_query("MATCH (x) DETACH DELETE x"))
        assert "clause:DETACH DELETE" in tags
        assert "clause:delete" in tags
        tags = query_feature_tags(
            parse_query("MERGE (m:L {id: 5}) SET m.k = 1")
        )
        assert {"clause:merge", "clause:set"} <= set(tags)

    def test_read_queries_unchanged(self):
        from repro.obs.coverage import query_feature_tags

        tags = query_feature_tags(parse_query("MATCH (n) RETURN n"))
        assert not any(tag.startswith("clause:c") for tag in tags)


class TestStatefulAdaptiveArms:
    def test_default_arms_unchanged_without_stateful(self):
        from repro.runtime.adapt import default_arms

        names = [arm.name for arm in default_arms()]
        assert not any(name.startswith("write-") for name in names)
        assert [arm.name for arm in default_arms(stateful=False)] == names

    def test_stateful_arms_extend_the_set(self):
        from repro.runtime.adapt import default_arms

        arms = default_arms(stateful=True)
        write = {arm.name for arm in arms} - {
            arm.name for arm in default_arms()
        }
        assert write == {
            "write-create", "write-merge", "write-set",
            "write-delete", "write-remove",
        }

    def test_attach_picks_arms_by_tester_kind(self):
        from repro.core.runner import GQSTester
        from repro.runtime.adapt import attach_adaptive_policy, default_arms

        stateful_policy = attach_adaptive_policy(StatefulGQSTester())
        assert len(stateful_policy.schedule.arms) == len(
            default_arms(stateful=True)
        )
        blind_policy = attach_adaptive_policy(GQSTester())
        assert len(blind_policy.schedule.arms) == len(default_arms())


class TestStatefulCliFlag:
    def test_stateful_flag_parses(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["campaign", "--stateful"])
        assert args.stateful == 0.5
        args = parser.parse_args(["campaign", "--stateful", "0.8"])
        assert args.stateful == 0.8
        args = parser.parse_args(["compare", "--stateful", "0.3"])
        assert args.stateful == 0.3
        args = parser.parse_args(["campaign"])
        assert args.stateful is None
