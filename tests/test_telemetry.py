"""Tests for the live-telemetry tier: follower, operator profiler, exports.

Covers the torn-line-tolerant :class:`EventFollower` against a log that
grows between polls, the PROBE-gated per-operator profiler of the compiled
execution core (including the byte-identity acceptance invariants), and
the portable export surfaces: Chrome trace JSON, ``--format json`` on
``stats``/``bugs``/``compare``, and the static HTML report.
"""

import json
import re

import pytest

from repro.cli import main
from repro.core.reporting import campaign_to_dict, load_event_stream
from repro.experiments.campaign import run_campaign_grid, run_tool_campaign
from repro.obs import (
    EXPORT_SCHEMA_VERSION,
    EventFollower,
    bugs_json,
    chrome_trace,
    deterministic_view,
    html_report,
    observed,
    render_bugs,
    render_coverage,
    render_profile,
    render_stats,
    render_watch,
    split_metric_key,
    stats_json,
)
from repro.obs.render import merged_snapshot_from_events


@pytest.fixture(scope="module")
def event_log(tmp_path_factory):
    """A finished compiled-mode campaign log with every event tier on."""
    path = tmp_path_factory.mktemp("telemetry") / "events.jsonl"
    code = main([
        "run", "--engine", "falkordb", "--minutes", "0.15",
        "--gate-scale", "0.05", "--metrics", "--coverage", "--triage",
        "--engine-mode", "compiled", "--events", str(path),
    ])
    assert code == 0
    return path


def campaign_query_total(events):
    """Total queries per the metrics counters — what ``repro stats`` shows."""
    snapshot = merged_snapshot_from_events(events)
    return sum(
        value for key, value in snapshot["counters"].items()
        if split_metric_key(key)[0] == "campaign.queries"
    )


class TestEventStreamSkipped:
    def test_loader_counts_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"event": "campaign_start"}) + "\n"
            + "{{{ not json\n"
            + json.dumps({"event": "campaign_end"}) + "\n"
            + '{"event": "qu',  # torn mid-write, no newline
            encoding="utf-8",
        )
        events = load_event_stream(path)
        assert [e["event"] for e in events] == ["campaign_start",
                                                "campaign_end"]
        assert events.skipped == 2

    def test_loader_still_a_plain_list(self, event_log):
        events = load_event_stream(event_log)
        assert isinstance(events, list)
        assert events.skipped == 0

    def test_stats_warns_on_skipped_lines(self, event_log, tmp_path, capsys):
        path = tmp_path / "damaged.jsonl"
        path.write_bytes(event_log.read_bytes() + b"%%% torn %%%\n")
        assert main(["stats", str(path)]) == 0
        err = capsys.readouterr().err
        assert "torn" in err and "1" in err

    def test_stats_silent_when_clean(self, event_log, capsys):
        assert main(["stats", str(event_log)]) == 0
        assert "torn" not in capsys.readouterr().err


class TestEventFollower:
    def test_growing_log_matches_posthoc_renderers(self, event_log, tmp_path):
        """S3 acceptance: poll a log that grows between polls (with torn
        boundaries) and match the post-hoc loader/renderers at each step."""
        raw = event_log.read_bytes()
        live = tmp_path / "live.jsonl"
        live.write_bytes(b"")
        follower = EventFollower(live)

        step = max(1, len(raw) // 17)  # boundaries land mid-line
        for start in range(0, len(raw), step):
            with live.open("ab") as fh:
                fh.write(raw[start:start + step])
            follower.poll()
            loaded = load_event_stream(live)
            # The loader skips an unterminated torn tail; the follower
            # buffers it as in-progress.  Both exclude it from events.
            assert follower.events == list(loaded)
            assert render_stats(follower.events) == render_stats(loaded)
            assert render_bugs(follower.events) == render_bugs(loaded)
            assert render_coverage(follower.events) == render_coverage(loaded)
        assert follower.finished
        assert follower.skipped == 0
        assert follower.events == list(load_event_stream(event_log))

    def test_torn_tail_parsed_once_completed(self, tmp_path):
        path = tmp_path / "tail.jsonl"
        first = json.dumps({"event": "campaign_start", "tester": "GQS",
                            "engine": "falkordb", "seed": 0})
        second = json.dumps({"event": "campaign_end", "tester": "GQS",
                             "engine": "falkordb", "seed": 0,
                             "queries_run": 7, "sim_seconds": 1.0,
                             "detected_faults": []})
        path.write_text(first + "\n" + second[:9], encoding="utf-8")
        follower = EventFollower(path)
        follower.poll()
        assert [e["event"] for e in follower.events] == ["campaign_start"]
        assert not follower.finished
        with path.open("a", encoding="utf-8") as fh:
            fh.write(second[9:] + "\n")
        follower.poll()
        assert [e["event"] for e in follower.events] == [
            "campaign_start", "campaign_end"]
        assert follower.skipped == 0
        assert follower.finished
        assert follower.total_queries == 7

    def test_terminated_garbage_counts_as_skipped(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("!!! never json !!!\n"
                        + json.dumps({"event": "grid_end"}) + "\n",
                        encoding="utf-8")
        follower = EventFollower(path)
        follower.poll()
        assert follower.skipped == 1
        assert follower.skipped == load_event_stream(path).skipped

    def test_missing_file_polls_empty(self, tmp_path):
        follower = EventFollower(tmp_path / "absent.jsonl")
        assert follower.poll() == []
        assert follower.events == []
        assert not follower.finished

    def test_render_watch_lists_cells_and_signatures(self, event_log):
        follower = EventFollower(event_log)
        follower.poll()
        frame = render_watch(follower)
        assert "== live campaign telemetry ==" in frame
        assert "GQS/falkordb/0" in frame
        assert "status: complete" in frame
        assert "queries/sec: -" in frame  # no rate in one-shot renders


class TestWatchCLI:
    def test_watch_once_matches_stats_totals(self, event_log, capsys):
        """Acceptance: ``repro watch --once`` on a finished log shows the
        same query total as ``repro stats``."""
        assert main(["watch", str(event_log), "--once"]) == 0
        frame = capsys.readouterr().out
        shown = int(re.search(r"queries: (\d+)", frame).group(1))
        assert shown == campaign_query_total(load_event_stream(event_log))
        assert shown > 0

    def test_watch_missing_log_is_an_error(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "absent.jsonl"), "--once"]) == 2
        assert "no such event log" in capsys.readouterr().err


class TestOperatorProfiler:
    def test_compiled_profile_lands_in_metrics(self):
        with observed() as (metrics, _tracer):
            run_tool_campaign("GQS", "falkordb", budget_seconds=6.0, seed=3,
                              gate_scale=0.05, execution_mode="compiled")
            snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        invocations = {
            split_metric_key(key)[1]["operator"]: value
            for key, value in counters.items()
            if split_metric_key(key)[0] == "plan.invocations"
        }
        assert invocations and "match" in invocations
        assert any(split_metric_key(key)[0] == "plan.steps"
                   for key in counters)
        assert any(split_metric_key(key)[0] == "plan.seconds"
                   for key in snapshot["timings"])
        lines = render_profile(snapshot)
        assert lines and any("match" in line for line in lines)

    @pytest.mark.parametrize("mode", ["interpreted", "dual"])
    def test_other_modes_flush_no_profile(self, mode):
        with observed() as (metrics, _tracer):
            run_tool_campaign("GQS", "falkordb", budget_seconds=4.0, seed=3,
                              gate_scale=0.05, execution_mode=mode)
            counters = metrics.snapshot()["counters"]
        assert not any(
            split_metric_key(key)[0] in ("plan.invocations", "plan.steps")
            for key in counters
        )

    def test_profiler_invariance_on_vs_off(self):
        """Acceptance: compiled campaign results are byte-identical with
        profiling on (observed) and off."""
        kwargs = dict(budget_seconds=10.0, seed=5, gate_scale=0.05,
                      execution_mode="compiled")
        plain = run_tool_campaign("GQS", "falkordb", **kwargs)
        with observed():
            profiled = run_tool_campaign("GQS", "falkordb", **kwargs)
        assert (json.dumps(campaign_to_dict(plain), sort_keys=True)
                == json.dumps(campaign_to_dict(profiled), sort_keys=True))

    def test_profiler_invariant_across_jobs(self, tmp_path):
        """Acceptance: profiled compiled grid is identical for jobs 1 vs 2,
        results and deterministic snapshot alike."""
        def grid(jobs):
            path = tmp_path / f"jobs{jobs}.jsonl"
            results = run_campaign_grid(
                ("GQS",), ("falkordb",), seeds=(0, 1), budget_seconds=6.0,
                gate_scale=0.05, derive_seeds=True, jobs=jobs,
                events_path=path, record_metrics=True,
                execution_mode="compiled",
            )
            events = load_event_stream(path)
            grid_snaps = [e for e in events
                          if e.get("event") == "metrics"
                          and e.get("scope") == "grid"]
            assert len(grid_snaps) == 1
            dumped = {
                key: json.dumps(campaign_to_dict(result), sort_keys=True)
                for key, result in results.items()
            }
            return dumped, deterministic_view(grid_snaps[0]["snapshot"])

        assert grid(1) == grid(2)


class TestChromeTrace:
    def test_trace_events_valid_and_monotone(self, event_log):
        trace = json.loads(json.dumps(chrome_trace(
            load_event_stream(event_log))))
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices
        last_ts = {}
        for entry in slices:
            assert entry["dur"] >= 0
            assert entry["ts"] >= last_ts.get(entry["tid"], -1.0)
            last_ts[entry["tid"]] = entry["ts"]
        names = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert any("GQS/falkordb/0" in m["args"]["name"] for m in names)

    def test_trace_cli_export_writes_file(self, event_log, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(["trace", str(event_log), "--export", "chrome",
                     "--out", str(out)])
        assert code == 0
        assert "chrome trace written" in capsys.readouterr().out
        trace = json.loads(out.read_text(encoding="utf-8"))
        assert trace["traceEvents"]

    def test_no_span_trace_is_empty_but_valid(self):
        trace = chrome_trace([{"event": "campaign_start"}])
        assert trace["traceEvents"] == []


class TestJsonExports:
    def test_stats_json_cli(self, event_log, capsys):
        assert main(["stats", str(event_log), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        events = load_event_stream(event_log)
        assert data["schema"] == EXPORT_SCHEMA_VERSION
        assert data["events"] == len(events)
        assert data["skipped_lines"] == 0
        assert data["queries"]["GQS"]["falkordb"] > 0
        assert data == json.loads(json.dumps(stats_json(events)))
        assert any(op["operator"] == "match" for op in data["profile"])

    def test_bugs_json_cli(self, event_log, capsys):
        assert main(["bugs", str(event_log), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        events = load_event_stream(event_log)
        assert data["schema"] == EXPORT_SCHEMA_VERSION
        assert data == json.loads(json.dumps(bugs_json(events)))
        assert data["distinct"] == len(data["bugs"])

    def test_compare_json_cli(self, capsys):
        code = main(["compare", "--engine", "falkordb", "--minutes", "0.1",
                     "--seed", "1", "--format", "json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == EXPORT_SCHEMA_VERSION
        assert data["engine"] == "falkordb"
        testers = [row["tester"] for row in data["rows"]]
        assert "GQS" in testers and len(testers) == 6
        for row in data["rows"]:
            if row["completed"]:
                assert {"queries", "bugs", "distinct"} <= set(row)


class TestHtmlReport:
    def test_report_cli_writes_html(self, event_log, tmp_path, capsys):
        out = tmp_path / "report.html"
        code = main(["report", str(event_log), "--out", str(out),
                     "--title", "smoke report"])
        assert code == 0
        assert "report written" in capsys.readouterr().out
        html = out.read_text(encoding="utf-8")
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "smoke report" in html
        assert "falkordb" in html
        assert "== profile ==" in html  # rendered stats block embedded

    def test_report_defaults_next_to_log(self, event_log, capsys):
        assert main(["report", str(event_log)]) == 0
        out = event_log.with_suffix(".html")
        assert out.exists()
        assert event_log.name in out.read_text(encoding="utf-8")

    def test_report_escapes_markup(self):
        html = html_report([], title="a<b & c>d")
        assert "a&lt;b &amp; c&gt;d" in html
        assert "a<b" not in html

    def test_report_missing_log_is_an_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
