"""Tests for the parallel campaign grid runner (repro.runtime.parallel).

The acceptance bar for the fan-out is byte-identical results for any worker
count, deterministic per-cell seed derivation, and checkpoint/resume from
the JSONL event stream.
"""

import json

import pytest

from repro.core.reporting import (
    campaign_to_dict,
    completed_cells_from_events,
    load_event_stream,
)
from repro.experiments.campaign import run_campaign_grid
from repro.runtime import CampaignCell, ParallelCampaignRunner, derive_cell_seed

# A small but non-trivial grid: two testers, one engine, ~6 simulated
# seconds each — enough to run hundreds of queries and detect faults.
TESTERS = ("GQS", "GQT")
ENGINE = "falkordb"
BUDGET = 6.0


def small_cells():
    return [
        CampaignCell(tester, ENGINE, 0, BUDGET, gate_scale=0.05)
        for tester in TESTERS
    ]


def grid_fingerprint(results):
    """Canonical JSON of the whole grid, for byte-identity comparisons."""
    return json.dumps(
        {"|".join(map(str, key)): campaign_to_dict(result)
         for key, result in results.items()},
        sort_keys=True,
    )


class TestDeterminism:
    def test_jobs_1_and_jobs_8_are_byte_identical(self):
        sequential = ParallelCampaignRunner(jobs=1).run(small_cells())
        parallel = ParallelCampaignRunner(jobs=8).run(small_cells())
        assert grid_fingerprint(sequential) == grid_fingerprint(parallel)
        # Spelled out: same detected-fault sets and same timelines.
        for key, result in sequential.items():
            assert parallel[key].detected_faults == result.detected_faults
            assert parallel[key].timeline == result.timeline

    def test_results_keyed_and_ordered_by_grid(self):
        results = ParallelCampaignRunner(jobs=2).run(small_cells())
        assert list(results) == [("GQS", ENGINE, 0), ("GQT", ENGINE, 0)]


class TestSeedDerivation:
    def test_fixed_values(self):
        # Pinned: any change here silently reshuffles every derived grid.
        assert derive_cell_seed("GQS", "neo4j", 0) == 18115982326878091436
        assert derive_cell_seed("GQS", "neo4j", 1) == 13583927294016456594
        assert derive_cell_seed("GQT", "neo4j", 0) == 13929987610319556633

    def test_cells_are_decorrelated(self):
        seeds = {
            derive_cell_seed(tester, engine, seed)
            for tester in ("GQS", "GQT", "GRev")
            for engine in ("neo4j", "falkordb")
            for seed in (0, 1)
        }
        assert len(seeds) == 12


class TestCheckpointResume:
    def test_interrupted_grid_resumes_from_last_completed_cell(self, tmp_path):
        full_log = tmp_path / "full.jsonl"
        reference = ParallelCampaignRunner(jobs=1, events_path=full_log).run(
            small_cells()
        )

        # Simulate a kill after the first completed cell: truncate the log
        # right after its cell_complete checkpoint.
        lines = full_log.read_text().splitlines()
        cut = next(
            i for i, line in enumerate(lines)
            if json.loads(line)["event"] == "cell_complete"
        )
        partial_log = tmp_path / "partial.jsonl"
        partial_log.write_text("\n".join(lines[: cut + 1]) + "\n")

        resumed = ParallelCampaignRunner(
            jobs=1, events_path=tmp_path / "resumed.jsonl"
        ).run(small_cells(), resume_path=partial_log)
        assert grid_fingerprint(resumed) == grid_fingerprint(reference)

        # Only the second cell actually re-ran.
        resumed_events = load_event_stream(tmp_path / "resumed.jsonl")
        starts = [e for e in resumed_events if e["event"] == "campaign_start"]
        assert [e["tester"] for e in starts] == ["GQT"]
        (grid_start,) = (e for e in resumed_events if e["event"] == "grid_start")
        assert grid_start["resumed"] == 1 and grid_start["pending"] == 1

    def test_completed_cells_round_trip_through_the_log(self, tmp_path):
        log = tmp_path / "grid.jsonl"
        results = ParallelCampaignRunner(jobs=1, events_path=log).run(
            small_cells()
        )
        recorded = completed_cells_from_events(load_event_stream(log))
        assert set(recorded) == set(results)
        for key, result in results.items():
            assert campaign_to_dict(recorded[key]) == campaign_to_dict(result)


class TestGridHygiene:
    def test_duplicate_cells_rejected(self):
        cells = small_cells() + small_cells()[:1]
        with pytest.raises(ValueError, match="duplicate"):
            ParallelCampaignRunner(jobs=1).run(cells)

    def test_unsupported_pairings_skipped(self):
        results = run_campaign_grid(
            ("GDBMeter",), ("memgraph", "falkordb"), seeds=(0,),
            budget_seconds=2.0, gate_scale=0.05,
        )
        assert list(results) == [("GDBMeter", "falkordb", 0)]

    def test_derived_seeds_decorrelate_replicates(self):
        results = run_campaign_grid(
            ("GQT",), (ENGINE,), seeds=(0, 1), budget_seconds=2.0,
            gate_scale=0.05, derive_seeds=True,
        )
        a, b = results.values()
        assert (a.queries_run, a.sim_seconds) != (b.queries_run, b.sim_seconds)
