"""Shared test configuration.

Registers a conservative hypothesis profile so the suite stays fast and
deterministic in CI-like environments (no deadline flakes on slow machines).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
