"""Tests for the unified EngineOptions value object (repro.gdb.engines).

The redesign folds the former scatter of engine keyword arguments
(``faults_enabled`` / ``gate_scale`` / ``restart`` / ``execution_mode``)
into one frozen dataclass accepted everywhere engines are built, while the
old keywords keep working and override the corresponding option field.
"""

import pytest

from repro.gdb import EngineOptions, create_engine
from repro.gdb.engines import EngineSpec, FalkorDBSim, ReferenceGDB
from repro.graph import GraphGenerator


def small_graph():
    return GraphGenerator(seed=3).generate_with_schema()


class TestEngineOptions:
    def test_defaults(self):
        options = EngineOptions()
        assert options.faults_enabled is True
        assert options.gate_scale == 1.0
        assert options.restart is True
        assert options.execution_mode == "interpreted"

    def test_frozen_value_object(self):
        options = EngineOptions()
        with pytest.raises(AttributeError):
            options.gate_scale = 0.5
        assert EngineOptions(gate_scale=0.5) == EngineOptions(gate_scale=0.5)

    def test_invalid_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown execution mode"):
            EngineOptions(execution_mode="quantum")

    def test_merged_applies_only_non_none_overrides(self):
        base = EngineOptions(gate_scale=0.25, faults_enabled=False)
        assert base.merged() is base
        merged = base.merged(gate_scale=0.5, restart=False)
        assert merged == EngineOptions(
            faults_enabled=False, gate_scale=0.5, restart=False
        )
        # False is a real override, not "unset".
        assert base.merged(faults_enabled=False).faults_enabled is False


class TestEngineConstruction:
    def test_create_engine_accepts_options(self):
        engine = create_engine(
            "falkordb",
            EngineOptions(gate_scale=0.04, execution_mode="compiled"),
        )
        assert engine.gate_scale == 0.04
        assert engine.execution_mode == "compiled"
        assert engine.faults_enabled is True

    def test_legacy_kwargs_equal_options_form(self):
        via_kwargs = create_engine(
            "neo4j", faults_enabled=False, gate_scale=0.1
        )
        via_options = create_engine(
            "neo4j", EngineOptions(faults_enabled=False, gate_scale=0.1)
        )
        assert via_kwargs.options == via_options.options
        assert via_kwargs.gate_scale == via_options.gate_scale == 0.1
        assert via_kwargs.faults_enabled is via_options.faults_enabled is False

    def test_legacy_kwargs_override_options(self):
        engine = create_engine(
            "kuzu", EngineOptions(gate_scale=0.5), gate_scale=0.05
        )
        assert engine.gate_scale == 0.05
        assert engine.options.gate_scale == 0.05

    def test_positional_scalars_still_rejected(self):
        # The scalar tuning flags remain keyword-only; the options slot
        # accepts exactly one thing, an EngineOptions.
        with pytest.raises(TypeError, match="EngineOptions"):
            create_engine("neo4j", False)
        with pytest.raises(TypeError, match="EngineOptions"):
            FalkorDBSim(0.5)

    def test_subclass_direct_construction(self):
        engine = FalkorDBSim(options=EngineOptions(faults_enabled=False))
        assert engine.faults_enabled is False
        assert ReferenceGDB().faults_enabled is False

    def test_restart_default_comes_from_options(self):
        schema, graph = small_graph()
        engine = create_engine("falkordb", EngineOptions(restart=False))
        engine.load_graph(graph, schema)  # first load, no explicit restart
        engine.load_graph(graph, schema, restart=True)
        assert engine.options.restart is False

    def test_campaign_identical_across_construction_forms(self):
        from repro.core.reporting import campaign_to_dict
        from repro.core.runner import GQSTester

        legacy = GQSTester().run(
            create_engine("falkordb", gate_scale=0.05), 5.0, seed=4
        )
        unified = GQSTester().run(
            create_engine("falkordb", EngineOptions(gate_scale=0.05)),
            5.0, seed=4,
        )
        assert campaign_to_dict(legacy) == campaign_to_dict(unified)


class TestEngineSpecBridge:
    def test_round_trip_through_options(self):
        options = EngineOptions(
            faults_enabled=False, gate_scale=0.2, execution_mode="dual"
        )
        spec = EngineSpec.from_options("memgraph", options)
        assert spec.options() == options.merged()  # restart is not shipped
        engine = spec.create()
        assert engine.name == "memgraph"
        assert engine.faults_enabled is False
        assert engine.gate_scale == 0.2
        assert engine.execution_mode == "dual"

    def test_pickled_field_layout_unchanged(self):
        # The spec rides inside flight-recorder bundles; its field set is
        # part of the bundle format and must not grow silently.
        spec = EngineSpec("neo4j", gate_scale=0.3)
        assert set(spec.__dataclass_fields__) - {"_"} == {
            "name", "faults_enabled", "gate_scale", "execution_mode"
        }
