"""Tests for pattern construction and mutation (§3.4)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import GraphPath, PatternBuilder
from repro.cypher import ast
from repro.engine.evaluator import Evaluator
from repro.engine.matcher import Matcher
from repro.graph.generator import GraphGenerator
from repro.graph.model import Node, Relationship


class TestGraphPath:
    def test_arity_validation(self):
        with pytest.raises(ValueError):
            GraphPath([0, 1], [])

    def test_reverse(self):
        path = GraphPath([0, 1, 2], [(10, True), (11, False)])
        rev = path.reverse()
        assert rev.node_ids == [2, 1, 0]
        assert rev.rels == [(11, True), (10, False)]
        assert rev.reverse().node_ids == path.node_ids

    def test_split(self):
        path = GraphPath([0, 1, 2], [(10, True), (11, True)])
        left, right = path.split_at(1)
        assert left.node_ids == [0, 1]
        assert right.node_ids == [1, 2]
        assert left.rels == [(10, True)]
        assert right.rels == [(11, True)]

    def test_concat(self):
        a = GraphPath([0, 1], [(10, True)])
        b = GraphPath([1, 2], [(11, True)])
        joined = a.concat(b)
        assert joined.node_ids == [0, 1, 2]
        with pytest.raises(ValueError):
            b.concat(a.reverse())

    def test_elements_interleaved(self):
        path = GraphPath([0, 1], [(5, True)])
        assert path.elements() == [("node", 0), ("rel", 5), ("node", 1)]


def build(seed, n_introduce=2, scope=None, previous=None, uniqueness=False):
    graph = GraphGenerator(seed=seed).generate()
    rng = random.Random(seed)
    builder = PatternBuilder(graph, rng)
    node_ids = graph.node_ids()
    introduce = [
        (f"n{i}", ("node", node_ids[i % len(node_ids)]))
        for i in range(n_introduce)
    ]
    result = builder.build_match(
        introduce,
        scope=scope or {},
        previous_paths=previous or [],
        add_uniqueness_predicates=uniqueness,
    )
    return graph, result, introduce


class TestBuildMatch:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_unique_match_invariant(self, seed):
        """The cornerstone of §3.4: patterns + WHERE match exactly one
        assignment, and it binds the planned elements."""
        graph, result, introduce = build(seed)
        matcher = Matcher(graph)
        evaluator = Evaluator(graph)
        matches = []
        for bindings in itertools.islice(
            matcher.match(result.patterns, {}), 500
        ):
            if result.where is not None:
                if evaluator.evaluate_predicate(result.where, bindings) is not True:
                    continue
            matches.append(bindings)
        assert len(matches) == 1
        the_match = matches[0]
        for var, element in introduce:
            kind, element_id = element
            bound = the_match[var]
            assert bound.id == element_id
            if kind == "node":
                assert isinstance(bound, Node)
            else:
                assert isinstance(bound, Relationship)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_bindings_report_every_pattern_variable(self, seed):
        graph, result, _introduce = build(seed)
        pattern_vars = set()
        for pattern in result.patterns:
            pattern_vars.update(pattern.variables())
        assert pattern_vars == set(result.bindings)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_no_duplicate_relationships_within_match(self, seed):
        """The builder never *intends* the same relationship twice in one
        MATCH (the reference semantics would make it unmatchable)."""
        graph, result, _introduce = build(seed)
        rel_ids = []
        for pattern in result.patterns:
            for rel in pattern.relationships:
                rel_ids.append(result.bindings[rel.variable].id)
        # Variables may repeat (shared across split patterns), but distinct
        # variables bind distinct relationships.
        var_to_id = {}
        for pattern in result.patterns:
            for rel in pattern.relationships:
                var_to_id[rel.variable] = result.bindings[rel.variable].id
        assert len(set(var_to_id.values())) == len(var_to_id)

    def test_scope_reuse_creates_cross_clause_reference(self):
        graph = GraphGenerator(seed=4).generate()
        rng = random.Random(4)
        builder = PatternBuilder(graph, rng)
        node_ids = graph.node_ids()
        first = builder.build_match(
            [("n0", ("node", node_ids[0]))], {}, [],
        )
        scope = {var: value for var, value in first.bindings.items()}
        # Introduce a neighbour; previous paths enable mutation reuse.
        second = builder.build_match(
            [("n1", ("node", node_ids[1]))],
            scope,
            first.paths,
            helper_start=100,
        )
        reused = set(second.bindings) & set(scope)
        # Reuse is probabilistic per graph shape, but new variables must
        # never collide with differently-bound scope variables.
        for var in set(second.bindings) - reused:
            assert var not in scope

    def test_uniqueness_predicates_emitted_for_dialects(self):
        found = False
        for seed in range(30):
            graph, result, _ = build(seed, uniqueness=True)
            rel_vars = [
                rel.variable
                for pattern in result.patterns
                for rel in pattern.relationships
            ]
            if len(set(rel_vars)) >= 2:
                text_terms = _conjunct_ops(result.where)
                assert "<>" in text_terms
                found = True
        assert found

    def test_missing_id_property_raises(self):
        from repro.graph.model import PropertyGraph

        graph = PropertyGraph()
        graph.add_node(["L"], {})  # no id property
        graph.add_node(["L"], {})
        builder = PatternBuilder(graph, random.Random(0))
        with pytest.raises(ValueError):
            builder.build_match([("n0", ("node", 0))], {}, [])


def _conjunct_ops(expr):
    ops = set()

    def visit(node):
        if isinstance(node, ast.Binary):
            ops.add(node.op)
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.Unary):
            visit(node.operand)

    if expr is not None:
        visit(expr)
    return ops


class TestSplitPaths:
    def test_split_preserves_elements(self):
        graph = GraphGenerator(seed=8).generate()
        builder = PatternBuilder(graph, random.Random(8), split_probability=1.0)
        # A 3-hop path must split into smaller paths covering the same rels.
        paths = [GraphPath(
            [graph.relationship(0).start, graph.relationship(0).end],
            [(0, True)],
        )]
        out = builder._split_paths(paths)
        assert {rel for path in out for rel in path.rel_ids()} == {0}

    def test_split_probability_zero_is_identity(self):
        graph = GraphGenerator(seed=8).generate()
        builder = PatternBuilder(graph, random.Random(8), split_probability=0.0)
        rel = graph.relationship(0)
        paths = [GraphPath([rel.start, rel.end], [(rel.id, True)])]
        assert builder._split_paths(list(paths)) == paths
