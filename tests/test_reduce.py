"""Signature-preserving test-case reduction (:mod:`repro.reduce`).

Covers the subsystem's contract end to end:

* ddmin minimizes correctly and deterministically;
* the oracle accepts only candidates that replay to the recorded triage
  signature, and refuses bundles that never reproduced;
* reduction is deterministic — the same bundle minimizes to the
  byte-identical ``*.min.json`` for repeated runs and any job count;
* every minimized bundle still replays to its original signature and is
  strictly smaller than its source;
* over a ≥20-bundle fault-injection sample, the mean shrink of graph
  elements (nodes + relationships) is at least 50% — the headline number
  that makes reduced bundles worth reading;
* the campaign integration (``--reduce`` / auto-reduce) writes minimized
  siblings, emits ``reduction`` events, and surfaces sizes in
  ``repro bugs``.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.campaign import run_tool_campaign
from repro.obs import load_bundle, replay_bundle
from repro.obs.recorder import FlightRecorder
from repro.reduce import (
    ReductionOracle,
    ReductionRunner,
    bundle_sizes,
    ddmin,
    failure_shape,
    graph_sizes,
    iter_bundle_paths,
    min_path_for,
    reduce_bundle,
    shrink_graph,
    validate_against_schema,
)

SMOKE = dict(budget_seconds=6.0, gate_scale=0.05)
# Replays per bundle: enough for the full graph passes (the shrink-ratio
# criterion) plus the start of query reduction, while keeping the module
# fast.  Tests that need the true fixpoint run unbudgeted on one bundle.
BUDGET = 100


# -- corpus: real bundles from seeded fault-injection campaigns -------------


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """≥20 repro bundles across two engines × two seeds."""
    directory = tmp_path_factory.mktemp("bundles")
    for engine in ("falkordb", "kuzu"):
        for seed in (0, 1):
            run_tool_campaign(
                "GQS", engine, seed=seed, record_triage=True,
                bundle_dir=directory, **SMOKE,
            )
    return directory


@pytest.fixture(scope="module")
def reduced(corpus):
    """The corpus minimized in place (``*.min.json`` siblings written)."""
    return ReductionRunner(jobs=2, replay_budget=BUDGET).run([corpus])


# -- ddmin ------------------------------------------------------------------


class TestDdmin:
    def test_finds_singleton_cause(self):
        calls = []

        def test(items):
            calls.append(list(items))
            return 7 in items

        assert ddmin(list(range(16)), test) == [7]

    def test_finds_multi_element_cause(self):
        # The classic ddmin shape: two far-apart elements must both stay.
        result = ddmin(list(range(32)), lambda s: 3 in s and 29 in s)
        assert result == [3, 29]

    def test_respects_min_size(self):
        assert ddmin([1, 2, 3, 4], lambda s: True, min_size=1) in ([1], [4])
        assert len(ddmin([1, 2, 3, 4], lambda s: True, min_size=2)) == 2

    def test_unremovable_input_survives(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda s: len(s) == 3) == items

    def test_deterministic(self):
        runs = [
            ddmin(list(range(24)), lambda s: 5 in s and 17 in s)
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]


# -- oracle contract --------------------------------------------------------


class TestOracle:
    def test_failure_shape(self):
        assert failure_shape({"rows": [[1]], "columns": ["a"]}) is None
        # Error shapes normalize to the exception type alone.
        assert (
            failure_shape({"error": "CypherError: boom at 42"})
            == "CypherError"
        )

    def test_rejects_non_bundle(self):
        with pytest.raises(ValueError):
            ReductionOracle({"format": "something-else"})

    def test_baseline_accepts_recorded_bundle(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        oracle = ReductionOracle(bundle)
        assert oracle.baseline()
        assert oracle.replays == 2

    def test_preservation_contract(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        oracle = ReductionOracle(bundle)
        expected = bundle["expected"]
        actual = bundle["actual"]
        # The recorded sides themselves satisfy the contract...
        assert oracle.preserves_signature(expected, actual)
        # ...a candidate whose discrepancy vanished does not...
        assert not oracle.preserves_signature(expected, expected)
        # ...nor one that trips a *different* fault...
        other = dict(actual, fault_id="some-other-fault")
        assert not oracle.preserves_signature(expected, other)
        # ...nor one whose failure shape changed (rows -> error).
        errored = {"error": "DatabaseCrash: gone", "fault_id": bundle["fault_id"]}
        if "error" not in actual:
            assert not oracle.preserves_signature(expected, errored)

    def test_verdicts_are_memoized(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        oracle = ReductionOracle(bundle)
        assert oracle.baseline()
        replays = oracle.replays
        assert oracle.accepts()  # same candidate — cached, no new replays
        assert oracle.replays == replays

    def test_replay_budget_exhausts_deterministically(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        oracle = ReductionOracle(bundle, replay_budget=2)
        assert oracle.baseline()
        assert oracle.exhausted
        # Uncached candidates are rejected without spending replays.
        assert not oracle.accepts(query="MATCH (n) RETURN n.id AS a")
        assert oracle.replays == 2

    def test_refuses_unreproducible_bundle(self, corpus, tmp_path):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        bundle["expected"] = {"columns": ["x"], "rows": [["tampered"]]}
        bundle["fault_id"] = "falkordb-L999"
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(bundle), encoding="utf-8")
        outcome = reduce_bundle(path)
        assert not outcome.reproduced
        assert not min_path_for(path).exists()


# -- graph shrinker ---------------------------------------------------------


class TestGraphShrink:
    def test_schema_validation_accepts_recorded_graphs(self, corpus):
        for path in iter_bundle_paths([corpus])[:4]:
            bundle = load_bundle(path)
            assert validate_against_schema(bundle["graph"], bundle["schema"])

    def test_schema_validation_rejects_undeclared_usage(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        graph = json.loads(json.dumps(bundle["graph"]))
        graph["nodes"][0]["labels"] = ["NOT_DECLARED"]
        assert not validate_against_schema(graph, bundle["schema"])

    def test_vacuous_without_schema(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        assert validate_against_schema(bundle["graph"], None)

    def test_shrinks_nodes_and_relationships(self, corpus):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        oracle = ReductionOracle(bundle)
        shrunk = shrink_graph(
            bundle["graph"], oracle,
            query=bundle["query"], schema=bundle["schema"],
        )
        before = graph_sizes(bundle["graph"])
        after = graph_sizes(shrunk)
        assert after["nodes"] < before["nodes"]
        assert after["relationships"] < before["relationships"]
        # The shrunk graph still reproduces the signature.
        assert oracle.accepts(graph=shrunk, query=bundle["query"])


# -- end-to-end reduction ---------------------------------------------------


class TestReduction:
    def test_corpus_is_a_twenty_bundle_sample(self, corpus):
        assert len(iter_bundle_paths([corpus])) >= 20

    def test_mean_graph_shrink_at_least_half(self, reduced):
        ratios = [o.graph_shrink_ratio for o in reduced if o.reproduced]
        assert len(ratios) >= 20
        assert sum(ratios) / len(ratios) >= 0.5

    def test_minimized_bundles_replay_to_same_signature(self, corpus, reduced):
        checked = 0
        for outcome in reduced:
            if not outcome.reproduced:
                continue
            minimized = load_bundle(outcome.min_path)
            original = load_bundle(outcome.source)
            assert minimized["signature"] == original["signature"]
            assert minimized["fault_id"] == original["fault_id"]
            # The minimized bundle is reproducible by construction: its
            # recorded sides replay byte-identically, and the discrepancy
            # still satisfies the signature-preservation contract.
            assert replay_bundle(minimized).reproduced
            assert ReductionOracle(minimized).baseline()
            checked += 1
        assert checked >= 20

    def test_minimized_bundles_strictly_smaller(self, reduced):
        for outcome in reduced:
            if not outcome.reproduced:
                continue
            before, after = outcome.original, outcome.reduced
            total_before = sum(before[k] for k in before)
            total_after = sum(after[k] for k in after)
            assert total_after < total_before
            assert after["nodes"] <= before["nodes"]
            assert after["relationships"] <= before["relationships"]

    def test_reduction_stats_embedded_in_min_bundle(self, reduced):
        outcome = next(o for o in reduced if o.reproduced)
        minimized = load_bundle(outcome.min_path)
        stats = minimized["reduction"]
        assert stats["original"] == outcome.original
        assert stats["reduced"] == outcome.reduced
        assert stats["reduced"] == bundle_sizes(minimized)

    def test_deterministic_rerun_and_job_count(self, corpus, tmp_path):
        # The two smallest bundles keep the double reduction cheap.
        paths = sorted(
            iter_bundle_paths([corpus]), key=lambda p: p.stat().st_size
        )[:2]
        for name, jobs in (("a", 1), ("b", 2)):
            directory = tmp_path / name
            directory.mkdir()
            for path in paths:
                (directory / path.name).write_bytes(path.read_bytes())
            ReductionRunner(jobs=jobs, replay_budget=BUDGET).run([directory])
        for path in paths:
            one = (tmp_path / "a" / min_path_for(path).name).read_bytes()
            two = (tmp_path / "b" / min_path_for(path).name).read_bytes()
            assert one == two


# -- campaign integration and CLI -------------------------------------------


class TestIntegration:
    @pytest.fixture(scope="class")
    def reduced_campaign(self, tmp_path_factory, request):
        """A small campaign with auto-reduce on (budget dialed down)."""
        previous = FlightRecorder.DEFAULT_REDUCE_BUDGET
        FlightRecorder.DEFAULT_REDUCE_BUDGET = 60
        request.addfinalizer(
            lambda: setattr(FlightRecorder, "DEFAULT_REDUCE_BUDGET", previous)
        )
        directory = tmp_path_factory.mktemp("campaign")
        events = directory / "events.jsonl"
        bundles = directory / "bundles"
        rc = main([
            "campaign", "--engine", "memgraph", "--minutes", "0.1",
            "--gate-scale", "0.05", "--triage",
            "--events", str(events), "--bundles", str(bundles), "--reduce",
        ])
        assert rc == 0
        return events, bundles

    def test_auto_reduce_writes_min_bundles(self, reduced_campaign):
        _events, bundles = reduced_campaign
        sources = iter_bundle_paths([bundles])
        assert sources
        for path in sources:
            assert min_path_for(path).exists()

    def test_reduction_events_emitted(self, reduced_campaign):
        events_path, _bundles = reduced_campaign
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        reductions = [e for e in events if e.get("event") == "reduction"]
        bundle_events = [e for e in events if e.get("event") == "bundle"]
        assert len(reductions) == len(bundle_events)
        for event in reductions:
            assert event["stats"]["reproduced"]
            assert event["min_path"].endswith(".min.json")

    def test_bugs_render_shows_reduced_sizes(self, reduced_campaign, capsys):
        events_path, _bundles = reduced_campaign
        assert main(["bugs", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "reduced: nodes " in out
        assert ".min.json" in out

    def test_cli_reduce_exit_codes(self, corpus, tmp_path, capsys):
        assert main(["reduce", str(tmp_path / "missing.json")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["reduce", str(empty)]) == 2
        capsys.readouterr()
        source = iter_bundle_paths([corpus])[0]
        copy = tmp_path / source.name
        copy.write_bytes(source.read_bytes())
        assert main(["reduce", str(copy), "--replay-budget", "60"]) == 0
        out = capsys.readouterr().out
        assert str(min_path_for(copy)) in out
        assert min_path_for(copy).exists()

    def test_cli_reduce_fails_on_unreproducible_bundle(
        self, corpus, tmp_path, capsys
    ):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        bundle["expected"] = {"columns": ["x"], "rows": [["tampered"]]}
        bundle["fault_id"] = "falkordb-L999"
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(bundle), encoding="utf-8")
        assert main(["reduce", str(path)]) == 1
        assert "FAILED to reproduce" in capsys.readouterr().err

    def test_cli_reduce_flag_requires_bundles(self, capsys):
        rc = main([
            "campaign", "--engine", "falkordb", "--minutes", "0.01",
            "--reduce",
        ])
        assert rc == 2
        assert "--reduce requires --bundles" in capsys.readouterr().err

    def test_cli_replay_names_diverged_side(self, corpus, tmp_path, capsys):
        bundle = load_bundle(iter_bundle_paths([corpus])[0])
        bundle["expected"] = {"columns": ["x"], "rows": [["tampered"]]}
        path = tmp_path / "diverged.json"
        path.write_text(json.dumps(bundle), encoding="utf-8")
        assert main(["replay", str(path)]) == 1
        err = capsys.readouterr().err
        assert "expected side(s) diverged" in err
        assert "FAILED to reproduce" in err
