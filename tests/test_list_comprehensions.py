"""Tests for list comprehensions across parser, printer, and evaluator."""

import pytest

from repro.cypher import ast
from repro.cypher.parser import parse_expression, parse_query
from repro.cypher.printer import print_expression
from repro.engine.errors import CypherTypeError
from repro.engine.executor import Executor
from repro.graph.model import PropertyGraph


@pytest.fixture
def executor():
    graph = PropertyGraph()
    graph.add_node(["P"], {"id": 0, "xs": ["a", "bb", "ccc"]})
    return Executor(graph)


def run(executor, text):
    return executor.execute(parse_query(text))


class TestParsing:
    def test_full_form(self):
        expr = parse_expression("[x IN [1,2] WHERE x > 1 | x * 2]")
        assert isinstance(expr, ast.ListComprehension)
        assert expr.variable == "x"
        assert expr.where is not None
        assert expr.projection is not None

    def test_filter_only(self):
        expr = parse_expression("[x IN [1,2] WHERE x > 1]")
        assert expr.projection is None

    def test_map_only(self):
        expr = parse_expression("[x IN [1,2] | x + 1]")
        assert expr.where is None

    def test_copy_form(self):
        expr = parse_expression("[x IN [1,2]]")
        assert expr.where is None and expr.projection is None

    def test_list_literal_not_confused(self):
        expr = parse_expression("[1, 2]")
        assert isinstance(expr, ast.ListLiteral)

    def test_round_trip(self):
        text = "[x IN [1, 2, 3] WHERE ((x) > (1)) | ((x) * (2))]"
        expr = parse_expression(text)
        assert parse_expression(print_expression(expr)) == expr


class TestEvaluation:
    def test_filter_and_map(self, executor):
        rows = run(executor, "RETURN [x IN [1,2,3,4] WHERE x % 2 = 0 | x * x] AS v")
        assert rows.rows == [([4, 16],)]

    def test_null_source(self, executor):
        rows = run(executor, "RETURN [x IN null | x] AS v")
        assert rows.rows == [(None,)]

    def test_non_list_source_raises(self, executor):
        with pytest.raises(CypherTypeError):
            run(executor, "RETURN [x IN 5 | x] AS v")

    def test_null_predicate_filters(self, executor):
        rows = run(executor, "RETURN [x IN [1, null, 3] WHERE x > 0] AS v")
        assert rows.rows == [([1, 3],)]

    def test_shadowing_is_local(self, executor):
        rows = run(
            executor,
            "UNWIND [10] AS x RETURN [x IN [1, 2] | x] AS inner, x AS outer",
        )
        assert rows.rows == [([1, 2], 10)]

    def test_over_property_list(self, executor):
        rows = run(
            executor,
            "MATCH (p:P) RETURN [s IN p.xs WHERE size(s) > 1 | toUpper(s)] AS v",
        )
        assert rows.rows == [(["BB", "CCC"],)]

    def test_nested_comprehension(self, executor):
        rows = run(
            executor,
            "RETURN [x IN [1,2] | [y IN [10] | x + y]] AS v",
        )
        assert rows.rows == [([[11], [12]],)]


class TestAnalysis:
    def test_bound_variable_not_a_dependency(self):
        from repro.cypher.analysis import analyze

        query = parse_query("MATCH (n) RETURN [x IN [1] | x + 1] AS v")
        # `x` is local to the comprehension: zero cross-clause references.
        assert analyze(query).dependencies == 0

    def test_outer_references_still_counted(self):
        from repro.cypher.analysis import analyze

        query = parse_query("MATCH (n) RETURN [x IN [1] | x + n.id] AS v")
        assert analyze(query).dependencies == 1

    def test_depth_counts_body(self):
        expr = parse_expression("[x IN [1] | abs(x + 1)]")
        assert expr.depth() >= 4


class TestGremlin:
    def test_unsupported(self):
        from repro.cypher.gremlin import UnsupportedForGremlin, translate_query

        with pytest.raises(UnsupportedForGremlin):
            translate_query(parse_query("MATCH (n) RETURN [x IN [1] | x] AS v"))
