"""End-to-end tests for stateful campaigns: the state-tracking oracle under
the campaign kernel, v2 sequence bundles (record / replay / reduce), and
grid determinism with ``--stateful``.

All campaigns here run the pinned configuration (seed 11, gate scale 0.15,
20 simulated seconds) that surfaces every state-corruption signature of the
four engine catalogs in a few wall-clock seconds.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.campaign import (
    make_tester,
    run_campaign_grid,
    run_tool_campaign,
)
from repro.gdb import create_engine
from repro.obs.recorder import (
    BUNDLE_FORMAT,
    BUNDLE_FORMAT_V2,
    FlightRecorder,
    load_bundle,
    replay_bundle,
)
from repro.runtime.kernel import CampaignKernel
from repro.synth.state import StatefulGQSTester

SEED = 11
GATE = 0.15
BUDGET = 20.0
ENGINES = ("neo4j", "memgraph", "kuzu", "falkordb")


def run_stateful(engine_name, recorder=None, budget=BUDGET, ratio=0.6):
    engine = create_engine(engine_name, gate_scale=GATE)
    tester = StatefulGQSTester(stateful_ratio=ratio)
    kernel = CampaignKernel(recorder=recorder)
    return kernel.run(tester, engine, budget, seed=SEED)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One four-engine stateful campaign with the flight recorder on."""
    bundle_dir = tmp_path_factory.mktemp("state_bundles")
    results = {}
    for engine_name in ENGINES:
        recorder = FlightRecorder(bundle_dir)
        results[engine_name] = run_stateful(engine_name, recorder=recorder)
    return bundle_dir, results


class TestStatefulCampaign:
    def test_state_signatures_surface_with_no_false_positives(self, recorded):
        _bundle_dir, results = recorded
        signatures = set()
        for engine_name, result in results.items():
            assert result.false_positive_count == 0
            for report in result.reports:
                if report.kind == "state":
                    assert report.fault_id is not None
                    signatures.add(f"{engine_name}:{report.fault_id}")
        # Acceptance floor: at least three distinct state-corruption
        # signatures across the four catalogs (this pin yields all five).
        assert len(signatures) >= 3
        assert signatures == {
            "neo4j:neo4j-ST1",
            "memgraph:memgraph-ST1",
            "kuzu:kuzu-ST1",
            "falkordb:falkordb-ST1",
            "falkordb:falkordb-ST2",
        }

    def test_stateful_tester_keeps_gqs_identity(self):
        tester = make_tester("GQS", "neo4j", stateful=0.4)
        assert isinstance(tester, StatefulGQSTester)
        assert tester.name == "GQS"
        assert tester.stateful_ratio == 0.4
        assert not isinstance(make_tester("GQS", "neo4j"), StatefulGQSTester)

    def test_run_tool_campaign_threads_stateful(self):
        result = run_tool_campaign(
            "GQS", "falkordb", budget_seconds=BUDGET, seed=SEED,
            gate_scale=GATE, stateful=0.6,
        )
        assert any(report.kind == "state" for report in result.reports)


class TestSequenceBundles:
    def test_state_bundles_are_v2_and_replay(self, recorded):
        bundle_dir, _results = recorded
        state_bundles = []
        for path in sorted(bundle_dir.glob("*.json")):
            bundle = load_bundle(path)
            assert bundle["format"] == BUNDLE_FORMAT_V2
            assert bundle["statements"]
            assert bundle["query"] == bundle["statements"][-1]
            if bundle.get("kind") == "state":
                state_bundles.append(bundle)
        assert len(state_bundles) >= 3
        for bundle in state_bundles:
            outcome = replay_bundle(bundle)
            assert outcome.reproduced
            assert outcome.discrepant
            # Post-write replays carry the state digest on both sides.
            assert "state" in bundle["expected"]
            assert "state" in bundle["actual"]
            assert (bundle["expected"]["state"]["digest"]
                    != bundle["actual"]["state"]["digest"])

    def test_describe_mentions_sequence(self, recorded):
        bundle_dir, _results = recorded
        path = sorted(bundle_dir.glob("*.json"))[0]
        description = replay_bundle(load_bundle(path)).describe()
        assert "sequence" in description

    def test_v1_bundles_still_record_and_replay(self, tmp_path):
        """A read-only GQS campaign keeps producing v1 bundles."""
        from repro.core.runner import GQSTester

        engine = create_engine("falkordb", gate_scale=GATE)
        recorder = FlightRecorder(tmp_path)
        CampaignKernel(recorder=recorder).run(
            GQSTester(), engine, BUDGET, seed=SEED
        )
        paths = sorted(tmp_path.glob("*.json"))
        assert paths
        for path in paths:
            bundle = load_bundle(path)
            assert bundle["format"] == BUNDLE_FORMAT
            assert "statements" not in bundle
            outcome = replay_bundle(bundle)
            assert outcome.reproduced


class TestSequenceReduction:
    def test_reduce_strictly_shrinks_a_sequence(self, recorded):
        from repro.reduce.runner import reduce_bundle

        bundle_dir, _results = recorded
        candidates = [
            (path, load_bundle(path))
            for path in sorted(bundle_dir.glob("*.json"))
        ]
        reducible = [
            (path, bundle) for path, bundle in candidates
            if len(bundle["statements"]) > 2
        ]
        assert reducible, "pinned campaign produced no multi-statement bundle"
        # Smallest first: cheapest oracle replays, same contract.
        path, bundle = min(
            reducible, key=lambda item: len(item[1]["statements"])
        )
        outcome = reduce_bundle(path, replay_budget=200)
        assert outcome.reproduced
        minimized = load_bundle(outcome.min_path)
        assert (len(minimized["statements"])
                < len(bundle["statements"]))
        assert minimized["signature"] == bundle["signature"]
        assert minimized["query"] == minimized["statements"][-1]
        assert outcome.reduced["statements"] < outcome.original["statements"]
        replay = replay_bundle(minimized)
        assert replay.reproduced
        assert replay.discrepant

    def test_reduction_is_deterministic(self, recorded):
        from repro.reduce.runner import reduce_bundle

        bundle_dir, _results = recorded
        path = next(
            path for path in sorted(bundle_dir.glob("*.json"))
            if len(load_bundle(path)["statements"]) > 1
        )
        first = reduce_bundle(path, write=False, replay_budget=60)
        second = reduce_bundle(path, write=False, replay_budget=60)
        assert first.to_dict() == second.to_dict()


class TestStatefulGridDeterminism:
    GRID_ENGINES = ("neo4j", "falkordb")

    def _grid(self, jobs, tmp_path, name, resume=None):
        return run_campaign_grid(
            ("GQS",), self.GRID_ENGINES, seeds=(SEED,),
            budget_seconds=BUDGET, gate_scale=GATE, jobs=jobs,
            events_path=tmp_path / name, resume_path=resume,
            stateful=0.6,
        )

    def test_jobs_byte_identity_and_resume(self, tmp_path):
        from repro.core.reporting import campaign_to_dict

        serial = self._grid(1, tmp_path, "serial.jsonl")
        parallel = self._grid(2, tmp_path, "parallel.jsonl")
        assert list(serial) == list(parallel)
        for key in serial:
            assert (campaign_to_dict(serial[key])
                    == campaign_to_dict(parallel[key]))
        # Resume from the serial log: every cell is checkpointed, so the
        # resumed grid merges stored results without re-running any.
        resumed = self._grid(
            1, tmp_path, "resumed.jsonl", resume=tmp_path / "serial.jsonl"
        )
        for key in serial:
            assert (campaign_to_dict(resumed[key])
                    == campaign_to_dict(serial[key]))
        events = [
            json.loads(line)
            for line in Path(tmp_path / "resumed.jsonl")
            .read_text().splitlines() if line.strip()
        ]
        start = next(e for e in events if e["event"] == "grid_start")
        assert start["resumed"] == len(serial)
        assert start["pending"] == 0

    def test_interpreted_and_compiled_results_identical(self):
        from repro.core.reporting import campaign_to_dict

        runs = {
            mode: run_tool_campaign(
                "GQS", "neo4j", budget_seconds=10.0, seed=SEED,
                gate_scale=GATE, stateful=0.6, execution_mode=mode,
            )
            for mode in ("interpreted", "compiled")
        }
        assert (campaign_to_dict(runs["interpreted"])
                == campaign_to_dict(runs["compiled"]))
