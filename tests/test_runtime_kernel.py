"""Tests for the shared campaign kernel (repro.runtime).

The kernel owns the campaign loop for all six testers: simulated-clock and
budget accounting, session policy, crash/restart handling, fault
deduplication, lazy trigger-record collection, and the event stream.  These
tests drive it with a scripted tester/engine pair so every policy is
observable, then sanity-check the real testers route through it.
"""



from repro.baselines.common import BaselineTester
from repro.baselines.gdsmith import GDsmithTester
from repro.core.reporting import campaign_to_dict
from repro.core.runner import GQSTester
from repro.gdb import create_engine
from repro.graph.generator import GeneratorConfig
from repro.runtime import (
    BugReport,
    CampaignKernel,
    EventLog,
    Judgement,
    SessionPolicy,
    TesterProtocol,
)


class StubEngine:
    """Minimal engine: records loads/restarts, crashes on demand."""

    name = "stub"

    def __init__(self):
        self.crashed = False
        self.load_restarts = []
        self.restarts = 0

    def load_graph(self, graph, schema, restart=False):
        self.load_restarts.append(restart)

    def restart(self):
        self.restarts += 1
        self.crashed = False


class ScriptedTester(TesterProtocol):
    """Proposes ``per_graph`` queries per graph at 1 simulated second each.

    ``faults[i]`` (by global query index) injects a report for that query;
    ``crash_at`` marks query indexes after which the engine crashes.
    """

    name = "Scripted"

    def __init__(self, per_graph=3, faults=None, crash_at=(),
                 restart_per_graph=False):
        self.generator_config = GeneratorConfig(max_nodes=5, max_relationships=6)
        self.session = SessionPolicy(restart_per_graph=restart_per_graph)
        self.per_graph = per_graph
        self.faults = faults or {}
        self.crash_at = set(crash_at)
        self.query_index = 0
        self.trigger_calls = 0

    def proposals(self, engine, graph, schema, rng):
        for i in range(self.per_graph):
            yield i

    def judge(self, engine, proposal, graph, rng, result):
        index = self.query_index
        self.query_index += 1
        result.sim_seconds += 1.0
        if index in self.crash_at:
            engine.crashed = True
        fault_id = self.faults.get(index)
        if fault_id is None:
            return Judgement()
        report = BugReport(self.name, engine.name, "logic", "scripted", "Q",
                           fault_id, result.sim_seconds)

        def record():
            self.trigger_calls += 1
            return {"fault_id": fault_id}

        return Judgement(report=report, trigger_record=record)


class TestKernelAccounting:
    def test_budget_stops_campaign(self):
        result = CampaignKernel().run(ScriptedTester(), StubEngine(), 10.0)
        assert result.queries_run == 10
        assert result.sim_seconds == 10.0

    def test_max_queries_caps_campaign(self):
        result = CampaignKernel().run(
            ScriptedTester(), StubEngine(), 1000.0, max_queries=7
        )
        assert result.queries_run == 7

    def test_zero_budget_runs_nothing(self):
        engine = StubEngine()
        result = CampaignKernel().run(ScriptedTester(), engine, 0.0)
        assert result.queries_run == 0
        assert engine.load_restarts == []


class TestSessionPolicy:
    def test_long_session_restarts_only_first_load(self):
        engine = StubEngine()
        CampaignKernel().run(
            ScriptedTester(per_graph=3, restart_per_graph=False), engine, 10.0
        )
        assert len(engine.load_restarts) == 4  # ceil(10 / 3) graphs
        assert engine.load_restarts[0] is True
        assert all(flag is False for flag in engine.load_restarts[1:])

    def test_restart_per_graph_restarts_every_load(self):
        engine = StubEngine()
        CampaignKernel().run(
            ScriptedTester(per_graph=3, restart_per_graph=True), engine, 10.0
        )
        assert len(engine.load_restarts) == 4
        assert all(flag is True for flag in engine.load_restarts)

    def test_declared_policies_of_real_testers(self):
        assert GQSTester.session.restart_per_graph is True
        assert BaselineTester.session.restart_per_graph is False


class TestCrashRecovery:
    def test_crash_triggers_restart_and_reload(self):
        engine = StubEngine()
        log = EventLog()
        CampaignKernel(events=log).run(
            ScriptedTester(crash_at=(4,)), engine, 10.0
        )
        assert engine.restarts == 1
        assert engine.crashed is False
        # Recovery reloads the current graph into the restarted instance.
        assert engine.load_restarts.count(True) == 2
        crashes = log.of_kind("crash")
        assert len(crashes) == 1
        assert crashes[0]["engine"] == "stub"

    def test_campaign_continues_after_crash(self):
        result = CampaignKernel().run(
            ScriptedTester(crash_at=(2,)), StubEngine(), 10.0
        )
        assert result.queries_run == 10


class TestFaultAccounting:
    def test_duplicate_faults_dedup_into_one_timeline_entry(self):
        tester = ScriptedTester(faults={1: "f-1", 4: "f-1", 6: "f-2"})
        result = CampaignKernel().run(tester, StubEngine(), 10.0)
        assert len(result.reports) == 3
        assert [fid for _t, fid in result.timeline] == ["f-1", "f-2"]
        assert result.detected_faults == ["f-1", "f-2"]

    def test_trigger_records_computed_lazily_once_per_fault(self):
        tester = ScriptedTester(faults={1: "f-1", 4: "f-1", 6: "f-2"})
        result = CampaignKernel().run(tester, StubEngine(), 10.0)
        assert tester.trigger_calls == 2
        assert [r["fault_id"] for r in result.trigger_records] == ["f-1", "f-2"]


class TestEventStream:
    def test_fault_events_match_timeline(self):
        log = EventLog()
        tester = ScriptedTester(faults={1: "f-1", 6: "f-2"})
        result = CampaignKernel(events=log).run(tester, StubEngine(), 10.0)
        faults = log.of_kind("fault")
        assert [(e["sim_time"], e["fault_id"]) for e in faults] == result.timeline

    def test_query_events_filtered_by_default(self):
        log = EventLog()
        CampaignKernel(events=log).run(ScriptedTester(), StubEngine(), 5.0)
        assert log.of_kind("query") == []

    def test_query_events_recorded_on_request(self):
        log = EventLog(record_queries=True)
        result = CampaignKernel(events=log).run(
            ScriptedTester(), StubEngine(), 5.0
        )
        assert len(log.of_kind("query")) == result.queries_run

    def test_campaign_start_and_end_events(self):
        log = EventLog()
        tester = ScriptedTester(restart_per_graph=True)
        result = CampaignKernel(events=log).run(tester, StubEngine(), 5.0, seed=9)
        (start,) = log.of_kind("campaign_start")
        assert start["tester"] == "Scripted"
        assert start["seed"] == 9
        assert start["restart_per_graph"] is True
        (end,) = log.of_kind("campaign_end")
        assert end["queries_run"] == result.queries_run
        assert end["detected_faults"] == result.detected_faults

    def test_event_stream_written_through_to_jsonl(self, tmp_path):
        from repro.core.reporting import load_event_stream

        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            CampaignKernel(events=log).run(
                ScriptedTester(faults={1: "f-1"}, crash_at=(3,)),
                StubEngine(), 6.0,
            )
        loaded = load_event_stream(path)
        assert loaded == log.events
        kinds = [event["event"] for event in loaded]
        assert "fault" in kinds and "crash" in kinds


class TestRealTestersRouteThroughKernel:
    def test_run_is_the_shared_protocol_run(self):
        # No tester carries its own campaign loop anymore.
        assert GQSTester.run is TesterProtocol.run
        assert BaselineTester.run is TesterProtocol.run
        assert GDsmithTester.run is TesterProtocol.run

    def test_gqs_campaign_is_deterministic_through_kernel(self):
        def one():
            engine = create_engine("falkordb", gate_scale=0.05)
            return campaign_to_dict(GQSTester().run(engine, 15.0, seed=3))

        assert one() == one()

    def test_kernel_and_convenience_run_agree(self):
        engine_a = create_engine("neo4j", gate_scale=0.05)
        engine_b = create_engine("neo4j", gate_scale=0.05)
        direct = CampaignKernel().run(GQSTester(), engine_a, 10.0, seed=5)
        convenience = GQSTester().run(engine_b, 10.0, seed=5)
        assert campaign_to_dict(direct) == campaign_to_dict(convenience)
