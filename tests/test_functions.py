"""Tests for the 61-function Cypher library."""

import math

import pytest

from repro.cypher.functions import (
    FUNCTIONS,
    FunctionError,
    call_function,
    is_aggregate,
    lookup,
)
from repro.graph.model import Node, Path, Relationship


def test_exactly_61_functions():
    """The paper's implementation supports 61 functions (§4)."""
    assert len(FUNCTIONS) == 61


def test_lookup_case_insensitive():
    assert lookup("TOUPPER") is lookup("toUpper")
    assert lookup("nope") is None


def test_is_aggregate():
    assert is_aggregate("count")
    assert is_aggregate("COLLECT")
    assert not is_aggregate("abs")


def test_unknown_function_raises():
    with pytest.raises(FunctionError):
        call_function("nope", [1])


def test_arity_checked():
    with pytest.raises(FunctionError):
        call_function("abs", [1, 2])
    with pytest.raises(FunctionError):
        call_function("left", ["abc"])


class TestNullPropagation:
    @pytest.mark.parametrize("name,args", [
        ("abs", [None]),
        ("left", [None, 2]),
        ("left", ["abc", None]),
        ("replace", ["a", None, "b"]),
        ("size", [None]),
        ("toUpper", [None]),
    ])
    def test_null_in_null_out(self, name, args):
        assert call_function(name, args) is None

    def test_coalesce_skips_nulls(self):
        assert call_function("coalesce", [None, None, 3]) == 3
        assert call_function("coalesce", [None]) is None

    def test_exists_handles_null(self):
        assert call_function("exists", [None]) is False
        assert call_function("exists", [0]) is True

    def test_value_type_of_null(self):
        assert call_function("valueType", [None]) == "NULL"


class TestNumeric:
    def test_abs(self):
        assert call_function("abs", [-5]) == 5
        assert call_function("abs", [-1.5]) == 1.5

    def test_ceil_floor_return_float(self):
        assert call_function("ceil", [1.2]) == 2.0
        assert call_function("floor", [1.8]) == 1.0
        assert isinstance(call_function("ceil", [1]), float)

    def test_round_half_away_from_zero(self):
        assert call_function("round", [0.5]) == 1.0
        assert call_function("round", [-0.5]) == -1.0
        assert call_function("round", [1.4]) == 1.0

    def test_sign(self):
        assert call_function("sign", [-3]) == -1
        assert call_function("sign", [0]) == 0
        assert call_function("sign", [2.5]) == 1

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(call_function("sqrt", [-1]))
        assert call_function("sqrt", [4]) == 2.0

    def test_log_domain(self):
        assert math.isnan(call_function("log", [0]))
        assert call_function("log", [math.e]) == pytest.approx(1.0)
        assert call_function("log10", [100]) == pytest.approx(2.0)

    def test_exp_overflow_is_inf(self):
        assert call_function("exp", [10000]) == float("inf")

    def test_trig(self):
        assert call_function("sin", [0]) == 0.0
        assert call_function("cos", [0]) == 1.0
        assert math.isnan(call_function("asin", [2]))
        assert call_function("atan2", [1, 1]) == pytest.approx(math.pi / 4)
        assert call_function("cot", [math.pi / 4]) == pytest.approx(1.0)

    def test_degrees_radians(self):
        assert call_function("degrees", [math.pi]) == pytest.approx(180.0)
        assert call_function("radians", [180]) == pytest.approx(math.pi)

    def test_constants(self):
        assert call_function("pi", []) == math.pi
        assert call_function("e", []) == math.e

    def test_is_nan(self):
        assert call_function("isNaN", [float("nan")]) is True
        assert call_function("isNaN", [1.0]) is False

    def test_type_errors(self):
        with pytest.raises(FunctionError):
            call_function("abs", ["x"])
        with pytest.raises(FunctionError):
            call_function("abs", [True])


class TestStrings:
    def test_left_right(self):
        assert call_function("left", ["hello", 2]) == "he"
        assert call_function("right", ["hello", 2]) == "lo"
        assert call_function("left", ["hi", 99]) == "hi"
        with pytest.raises(FunctionError):
            call_function("left", ["x", -1])

    def test_trim_family(self):
        assert call_function("trim", ["  a  "]) == "a"
        assert call_function("ltrim", ["  a "]) == "a "
        assert call_function("rtrim", [" a  "]) == " a"

    def test_replace(self):
        assert call_function("replace", ["banana", "na", "NA"]) == "baNANA"

    def test_replace_empty_search_returns_original(self):
        """The Figure 9 case: our reference treats '' search as identity."""
        assert call_function("replace", ["ts15G", "", "U11sWFvRw"]) == "ts15G"

    def test_split(self):
        assert call_function("split", ["a,b,c", ","]) == ["a", "b", "c"]
        assert call_function("split", ["abc", ""]) == ["a", "b", "c"]

    def test_substring(self):
        assert call_function("substring", ["hello", 1]) == "ello"
        assert call_function("substring", ["hello", 1, 3]) == "ell"

    def test_reverse_string_and_list(self):
        assert call_function("reverse", ["abc"]) == "cba"
        assert call_function("reverse", [[1, 2]]) == [2, 1]

    def test_case_conversion(self):
        assert call_function("toUpper", ["aB"]) == "AB"
        assert call_function("toLower", ["aB"]) == "ab"

    def test_char_length_and_size(self):
        assert call_function("char_length", ["abc"]) == 3
        assert call_function("size", ["abc"]) == 3
        assert call_function("size", [[1, 2]]) == 2
        with pytest.raises(FunctionError):
            call_function("size", [1])


class TestConversions:
    def test_to_string(self):
        assert call_function("toString", [1]) == "1"
        assert call_function("toString", [True]) == "true"
        assert call_function("toString", [1.5]) == "1.5"

    def test_to_integer(self):
        assert call_function("toInteger", ["42"]) == 42
        assert call_function("toInteger", [" -3 "]) == -3
        assert call_function("toInteger", [2.9]) == 2
        assert call_function("toInteger", ["4.7"]) == 4
        assert call_function("toInteger", ["nope"]) is None

    def test_to_float(self):
        assert call_function("toFloat", ["1.5"]) == 1.5
        assert call_function("toFloat", [2]) == 2.0
        assert call_function("toFloat", ["bad"]) is None

    def test_to_boolean(self):
        assert call_function("toBoolean", ["true"]) is True
        assert call_function("toBoolean", [" FALSE "]) is False
        assert call_function("toBoolean", ["meh"]) is None

    def test_or_null_variants(self):
        assert call_function("toIntegerOrNull", [[1]]) is None
        assert call_function("toFloatOrNull", [True]) is None
        assert call_function("toBooleanOrNull", [1.5]) is None
        assert call_function("toStringOrNull", [[1]]) is None

    def test_strict_variants_raise(self):
        with pytest.raises(FunctionError):
            call_function("toInteger", [True])
        with pytest.raises(FunctionError):
            call_function("toString", [[1]])


class TestLists:
    def test_head_last_tail(self):
        assert call_function("head", [[1, 2, 3]]) == 1
        assert call_function("last", [[1, 2, 3]]) == 3
        assert call_function("tail", [[1, 2, 3]]) == [2, 3]
        assert call_function("head", [[]]) is None
        assert call_function("tail", [[]]) == []

    def test_range(self):
        assert call_function("range", [1, 4]) == [1, 2, 3, 4]
        assert call_function("range", [0, 10, 3]) == [0, 3, 6, 9]
        assert call_function("range", [3, 1, -1]) == [3, 2, 1]
        with pytest.raises(FunctionError):
            call_function("range", [1, 5, 0])

    def test_keys(self):
        node = Node(0, [], {"b": 1, "a": 2})
        assert call_function("keys", [node]) == ["a", "b"]
        assert call_function("keys", [{"x": 1}]) == ["x"]

    def test_is_empty(self):
        assert call_function("isEmpty", [[]]) is True
        assert call_function("isEmpty", [""]) is True
        assert call_function("isEmpty", [{}]) is True
        assert call_function("isEmpty", [[1]]) is False


class TestGraphFunctions:
    def test_id_and_labels(self):
        node = Node(7, ["B", "A"])
        assert call_function("id", [node]) == 7
        assert call_function("labels", [node]) == ["A", "B"]

    def test_type(self):
        rel = Relationship(1, "LIKES", 0, 2)
        assert call_function("type", [rel]) == "LIKES"
        with pytest.raises(FunctionError):
            call_function("type", [Node(0)])

    def test_start_end_node_reference_convention(self):
        rel = Relationship(1, "T", 3, 9)
        assert call_function("startNode", [rel]) == ("__node_ref__", 3)
        assert call_function("endNode", [rel]) == ("__node_ref__", 9)

    def test_properties(self):
        node = Node(0, [], {"a": 1})
        assert call_function("properties", [node]) == {"a": 1}

    def test_length_and_path_functions(self):
        a, b = Node(0), Node(1)
        rel = Relationship(0, "T", 0, 1)
        path = Path((a, b), (rel,))
        assert call_function("length", [path]) == 1
        assert call_function("nodes", [path]) == [a, b]
        assert call_function("relationships", [path]) == [rel]
        assert call_function("length", ["abc"]) == 3  # legacy string length
