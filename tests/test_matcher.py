"""Tests for the pattern matcher."""

import pytest

from repro.cypher import ast
from repro.engine.matcher import Matcher
from repro.graph.model import PropertyGraph


@pytest.fixture
def diamond():
    r"""A diamond:  0 -> 1 -> 3,  0 -> 2 -> 3, plus a self-loop on 3."""
    graph = PropertyGraph()
    for index in range(4):
        graph.add_node([f"N{index}"], {"id": index})
    graph.add_relationship(0, 1, "A", {"id": 0})
    graph.add_relationship(0, 2, "A", {"id": 1})
    graph.add_relationship(1, 3, "B", {"id": 2})
    graph.add_relationship(2, 3, "B", {"id": 3})
    graph.add_relationship(3, 3, "LOOP", {"id": 4})
    return graph


def node_pattern(var, *labels):
    return ast.NodePattern(var, tuple(labels))


def rel(var, direction=ast.OUT, *types):
    return ast.RelationshipPattern(var, tuple(types), direction)


def path(*parts):
    nodes = tuple(p for p in parts if isinstance(p, ast.NodePattern))
    rels = tuple(p for p in parts if isinstance(p, ast.RelationshipPattern))
    return ast.PathPattern(nodes, rels)


class TestSingleChain:
    def test_single_node(self, diamond):
        matcher = Matcher(diamond)
        matches = list(matcher.match((path(node_pattern("n")),), {}))
        assert len(matches) == 4

    def test_label_constraint(self, diamond):
        matcher = Matcher(diamond)
        matches = list(matcher.match((path(node_pattern("n", "N2")),), {}))
        assert len(matches) == 1
        assert matches[0]["n"].id == 2

    def test_directed_hop(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r"), node_pattern("b"))
        matches = list(matcher.match((pattern,), {}))
        assert len(matches) == 5  # 4 edges + self loop

    def test_incoming_direction(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r", ast.IN), node_pattern("b"))
        matches = list(matcher.match((pattern,), {}))
        # Same five edges, viewed from the other side.
        assert len(matches) == 5
        assert all(m["r"].end == m["a"].id for m in matches)

    def test_undirected_hop(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r", ast.BOTH), node_pattern("b"))
        matches = list(matcher.match((pattern,), {}))
        # Each non-loop edge matched twice (once per orientation) + loop once.
        assert len(matches) == 9

    def test_type_constraint(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r", ast.OUT, "A"), node_pattern("b"))
        matches = list(matcher.match((pattern,), {}))
        assert {m["r"].id for m in matches} == {0, 1}

    def test_two_hop_paths(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(
            node_pattern("a"), rel("r1"), node_pattern("b"), rel("r2"),
            node_pattern("c"),
        )
        matches = list(matcher.match((pattern,), {}))
        # 0->1->3, 0->2->3, 1->3->3(loop), 2->3->3(loop).
        assert len(matches) == 4


class TestRelationshipUniqueness:
    def test_loop_cannot_repeat(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(
            node_pattern("a"), rel("r1", ast.BOTH), node_pattern("b"),
            rel("r2", ast.BOTH), node_pattern("c"),
        )
        for match in matcher.match((pattern,), {}):
            assert match["r1"].id != match["r2"].id

    def test_uniqueness_across_comma_patterns(self, diamond):
        matcher = Matcher(diamond)
        p1 = path(node_pattern("a"), rel("r1", ast.OUT, "A"), node_pattern("b"))
        p2 = path(node_pattern("c"), rel("r2", ast.OUT, "A"), node_pattern("d"))
        for match in matcher.match((p1, p2), {}):
            assert match["r1"].id != match["r2"].id

    def test_uniqueness_disabled(self, diamond):
        loose = Matcher(diamond, enforce_rel_uniqueness=False)
        p1 = path(node_pattern("a"), rel("r1", ast.OUT, "A"), node_pattern("b"))
        p2 = path(node_pattern("c"), rel("r2", ast.OUT, "A"), node_pattern("d"))
        matches = list(loose.match((p1, p2), {}))
        assert any(m["r1"].id == m["r2"].id for m in matches)


class TestBoundVariables:
    def test_bound_node_constrains(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r"), node_pattern("b"))
        row = {"a": diamond.node(0)}
        matches = list(matcher.match((pattern,), row))
        assert len(matches) == 2
        assert all(m["a"].id == 0 for m in matches)

    def test_bound_relationship_constrains(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r"), node_pattern("b"))
        row = {"r": diamond.relationship(2)}
        matches = list(matcher.match((pattern,), row))
        assert len(matches) == 1
        assert matches[0]["a"].id == 1

    def test_null_bound_variable_never_matches(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r"), node_pattern("b"))
        assert list(matcher.match((pattern,), {"a": None})) == []

    def test_shared_variable_joins_patterns(self, diamond):
        matcher = Matcher(diamond)
        p1 = path(node_pattern("a"), rel("r1", ast.OUT, "A"), node_pattern("m"))
        p2 = path(node_pattern("m"), rel("r2", ast.OUT, "B"), node_pattern("b"))
        matches = list(matcher.match((p1, p2), {}))
        assert len(matches) == 2  # through node 1 and node 2
        for match in matches:
            assert match["r1"].end == match["m"].id
            assert match["r2"].start == match["m"].id

    def test_same_variable_twice_in_one_pattern(self, diamond):
        # (n)-[r]->(n) matches only the self-loop.
        matcher = Matcher(diamond)
        pattern = ast.PathPattern(
            (node_pattern("n"), node_pattern("n")), (rel("r"),)
        )
        matches = list(matcher.match((pattern,), {}))
        assert len(matches) == 1
        assert matches[0]["n"].id == 3


class TestPropertyMaps:
    def test_inline_property_filter(self, diamond):
        matcher = Matcher(diamond)
        props = ast.MapLiteral((("id", ast.Literal(2)),))
        pattern = path(ast.NodePattern("n", (), props))
        matches = list(matcher.match((pattern,), {}))
        assert len(matches) == 1
        assert matches[0]["n"].id == 2

    def test_property_filter_no_match(self, diamond):
        matcher = Matcher(diamond)
        props = ast.MapLiteral((("id", ast.Literal(99)),))
        pattern = path(ast.NodePattern("n", (), props))
        assert list(matcher.match((pattern,), {})) == []

    def test_rel_property_filter(self, diamond):
        matcher = Matcher(diamond)
        props = ast.MapLiteral((("id", ast.Literal(3)),))
        pattern = ast.PathPattern(
            (node_pattern("a"), node_pattern("b")),
            (ast.RelationshipPattern("r", (), ast.OUT, props),),
        )
        matches = list(matcher.match((pattern,), {}))
        assert len(matches) == 1
        assert matches[0]["r"].id == 3


class TestDeterminism:
    def test_match_order_is_stable(self, diamond):
        matcher = Matcher(diamond)
        pattern = path(node_pattern("a"), rel("r", ast.BOTH), node_pattern("b"))
        first = [(m["a"].id, m["r"].id, m["b"].id)
                 for m in matcher.match((pattern,), {})]
        second = [(m["a"].id, m["r"].id, m["b"].id)
                  for m in matcher.match((pattern,), {})]
        assert first == second
