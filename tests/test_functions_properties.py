"""Property tests over the function library's cross-cutting contracts."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher.functions import FUNCTIONS, FunctionError, call_function

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=6),
    st.lists(st.integers(min_value=-5, max_value=5), max_size=3),
)


def invoke(name, args):
    try:
        return ("ok", call_function(name, args))
    except FunctionError as exc:
        return ("error", str(exc))


class TestNullContract:
    @given(st.sampled_from(sorted(FUNCTIONS)), st.integers(0, 3))
    @settings(max_examples=200, deadline=None)
    def test_null_in_null_out_or_declared_exception(self, name, extra):
        """Every null-propagating function returns null for null input."""
        fdef = FUNCTIONS[name]
        arity = fdef.arity_min
        if arity == 0:
            return
        args = [None] * arity
        status, value = invoke(name, args)
        if fdef.propagates_null:
            assert status == "ok" and value is None
        # Non-propagating functions define their own null behaviour; they
        # must still not crash with a non-FunctionError.


class TestArityContract:
    @given(st.sampled_from(sorted(FUNCTIONS)))
    @settings(max_examples=100, deadline=None)
    def test_too_few_arguments_rejected(self, name):
        fdef = FUNCTIONS[name]
        if fdef.arity_min == 0:
            return
        status, _ = invoke(name, [1] * (fdef.arity_min - 1))
        assert status == "error"

    @given(st.sampled_from(sorted(FUNCTIONS)))
    @settings(max_examples=100, deadline=None)
    def test_too_many_arguments_rejected(self, name):
        fdef = FUNCTIONS[name]
        if fdef.arity_max is None:
            return
        status, _ = invoke(name, [1] * (fdef.arity_max + 1))
        assert status == "error"


class TestTotalityOnScalars:
    """Functions either return a value or raise FunctionError — never
    anything else — for arbitrary scalar inputs."""

    @given(st.sampled_from(sorted(FUNCTIONS)), st.lists(scalar_values, max_size=3))
    @settings(max_examples=400, deadline=None)
    def test_no_unexpected_exceptions(self, name, args):
        fdef = FUNCTIONS[name]
        if not (fdef.arity_min <= len(args) and
                (fdef.arity_max is None or len(args) <= fdef.arity_max)):
            return
        invoke(name, args)  # must not raise anything but FunctionError


class TestInverseRelationships:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_tostring_tointeger_inverse(self, value):
        assert call_function("toInteger", [call_function("toString", [value])]) == value

    @given(st.text(alphabet="abcXYZ019", max_size=10))
    def test_reverse_involutive(self, text):
        assert call_function("reverse", [call_function("reverse", [text])]) == text

    @given(st.lists(st.integers(), max_size=6))
    def test_head_tail_partition(self, items):
        if not items:
            return
        head = call_function("head", [items])
        tail = call_function("tail", [items])
        assert [head] + tail == items

    @given(st.text(alphabet="abc", max_size=8),
           st.integers(min_value=0, max_value=8))
    def test_left_right_cover(self, text, cut):
        cut = min(cut, len(text))
        left = call_function("left", [text, cut])
        right = call_function("right", [text, len(text) - cut])
        assert left + right == text

    @given(st.text(alphabet="xyz", max_size=8))
    def test_upper_lower_case_stable(self, text):
        upper = call_function("toUpper", [text])
        assert call_function("toLower", [upper]) == text
