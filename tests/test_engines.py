"""Tests for the simulated GDB engines and their dialects."""

import pytest

from repro.cypher.parser import parse_query
from repro.engine.errors import (
    CypherRuntimeError,
    DatabaseCrash,
    ResourceExhausted,
)
from repro.gdb import (
    ALL_ENGINE_NAMES,
    ReferenceGDB,
    create_engine,
    faults_for,
)
from repro.graph.generator import GraphGenerator


@pytest.fixture
def loaded():
    """All four engines, faults disabled, loaded with the same graph."""
    generator = GraphGenerator(seed=3)
    schema, graph = generator.generate_with_schema()
    engines = {}
    for name in ALL_ENGINE_NAMES:
        engine = create_engine(name, faults_enabled=False)
        engine.load_graph(graph, schema)
        engines[name] = engine
    return graph, schema, engines


class TestLifecycle:
    def test_execute_without_graph_raises(self):
        engine = create_engine("neo4j")
        with pytest.raises(CypherRuntimeError):
            engine.execute("MATCH (n) RETURN n")

    def test_kuzu_requires_schema(self):
        generator = GraphGenerator(seed=1)
        schema, graph = generator.generate_with_schema()
        engine = create_engine("kuzu")
        with pytest.raises(CypherRuntimeError):
            engine.load_graph(graph)  # no schema
        engine.load_graph(graph, schema)  # fine with schema

    def test_other_engines_accept_schemaless_load(self):
        graph = GraphGenerator(seed=1).generate()
        for name in ("neo4j", "memgraph", "falkordb"):
            create_engine(name).load_graph(graph)

    def test_restart_resets_session_counter(self, loaded):
        _graph, _schema, engines = loaded
        engine = engines["neo4j"]
        engine.execute("MATCH (n) RETURN n")
        assert engine.queries_since_restart == 1
        engine.restart()
        assert engine.queries_since_restart == 0

    def test_load_without_restart_keeps_counter(self, loaded):
        graph, schema, engines = loaded
        engine = engines["falkordb"]
        engine.execute("MATCH (n) RETURN n")
        engine.load_graph(graph, schema, restart=False)
        assert engine.queries_since_restart == 1

    def test_engine_copies_graph(self, loaded):
        graph, _schema, engines = loaded
        engine = engines["neo4j"]
        before = engine.execute("MATCH (n) RETURN count(*) AS c").rows[0][0]
        graph.add_node(["EXTRA"])
        after = engine.execute("MATCH (n) RETURN count(*) AS c").rows[0][0]
        assert before == after


class TestDialects:
    def test_text_and_ast_agree(self, loaded):
        _graph, _schema, engines = loaded
        engine = engines["neo4j"]
        text = "MATCH (n) RETURN count(*) AS c"
        via_text = engine.execute(text)
        via_ast = engine.execute(parse_query(text))
        assert via_text.same_rows(via_ast)

    def test_call_procedures_support(self, loaded):
        _graph, _schema, engines = loaded
        query = "CALL db.labels() YIELD label RETURN label"
        engines["neo4j"].execute(query)
        engines["falkordb"].execute(query)
        for name in ("memgraph", "kuzu"):
            with pytest.raises(CypherRuntimeError):
                engines[name].execute(query)

    def test_rel_uniqueness_dialect_difference(self, loaded):
        _graph, _schema, engines = loaded
        query = "MATCH (a)-[r1]-(b)-[r2]-(c) RETURN count(*) AS c"
        strict = engines["neo4j"].execute(query).rows[0][0]
        loose = engines["kuzu"].execute(query).rows[0][0]
        assert loose >= strict

    def test_unsupported_functions_rejected(self, loaded):
        _graph, _schema, engines = loaded
        with pytest.raises(CypherRuntimeError):
            engines["memgraph"].execute("RETURN cot(1.0) AS x")
        engines["neo4j"].execute("RETURN cot(1.0) AS x")  # fine on Neo4j

    def test_lenient_type_errors_on_memgraph(self, loaded):
        _graph, _schema, engines = loaded
        query = "RETURN 'a' * 2 AS x"
        result = engines["memgraph"].execute(query)
        assert len(result) == 0  # coerced to an empty result
        from repro.engine.errors import CypherTypeError

        with pytest.raises(CypherTypeError):
            engines["neo4j"].execute(query)

    def test_float_formatting_differs(self, loaded):
        _graph, _schema, engines = loaded
        result = engines["neo4j"].execute("RETURN 0.1234567890123 AS x")
        neo_text = engines["neo4j"].format_result(result)
        falkor_text = engines["falkordb"].format_result(result)
        assert neo_text != falkor_text

    def test_cost_model_shape(self):
        """The §5.3 throughput facts: 9-step queries ~6.6x slower than
        3-step; Memgraph ~6 q/s and Neo4j ~3 q/s at 9 steps."""
        from repro.gdb import DIALECTS

        for dialect in DIALECTS.values():
            ratio = dialect.cost_of_steps(9) / dialect.cost_of_steps(3)
            assert ratio == pytest.approx(6.6, rel=1e-6)
        assert 1 / DIALECTS["memgraph"].cost_of_steps(9) == pytest.approx(6.0)
        assert 1 / DIALECTS["neo4j"].cost_of_steps(9) == pytest.approx(3.0)

    def test_cost_of_query_counts_clauses(self, loaded):
        _graph, _schema, engines = loaded
        engine = engines["neo4j"]
        short = engine.cost_of("MATCH (n) RETURN n")
        long = engine.cost_of(
            "MATCH (n) WITH n WITH n WITH n WITH n WITH n RETURN n"
        )
        assert long > short


class TestFaultInjection:
    def test_reference_engine_has_no_faults(self):
        engine = ReferenceGDB()
        assert engine.faults == []

    def test_fault_fires_and_perturbs(self):
        """Figure 17's UNWIND-before-MATCH fault on FalkorDB."""
        generator = GraphGenerator(seed=6)
        schema, graph = generator.generate_with_schema()
        engine = create_engine("falkordb")
        engine.load_graph(graph, schema)
        reference = ReferenceGDB()
        reference.load_graph(graph, schema)

        query = "UNWIND [1,2,3] AS a0 MATCH (n) WHERE n.id = 0 RETURN a0"
        correct = reference.execute(query)
        assert len(correct) == 3
        actual = engine.execute(query)
        if engine.last_fired_fault is not None:
            assert engine.last_fired_fault.fault_id == "falkordb-L2"
            assert len(actual) == 1  # only the first record fetched
        else:
            # Gated out for this particular query signature; the unfaulted
            # result must then be correct.
            assert actual.same_rows(correct)

    def test_faults_disabled_engine_is_correct(self):
        generator = GraphGenerator(seed=6)
        schema, graph = generator.generate_with_schema()
        clean = create_engine("falkordb", faults_enabled=False)
        clean.load_graph(graph, schema)
        query = "UNWIND [1,2,3] AS a0 MATCH (n) WHERE n.id = 0 RETURN a0"
        assert len(clean.execute(query)) == 3
        assert clean.last_fired_fault is None

    def test_crash_requires_restart(self):
        generator = GraphGenerator(seed=2)
        schema, graph = generator.generate_with_schema()
        engine = create_engine("falkordb", gate_scale=0.0)  # every gate open
        engine.load_graph(graph, schema)
        engine.queries_since_restart = 10**6  # long session
        query = "MATCH (n) WHERE n.id = 0 RETURN n.id AS v"
        with pytest.raises(DatabaseCrash):
            engine.execute(query)
        # Instance down until restarted.
        with pytest.raises(DatabaseCrash):
            engine.execute("RETURN 1 AS x")
        engine.restart()
        engine.load_graph(graph, schema)
        engine.execute("RETURN 1 AS x")

    def test_memgraph_replace_empty_hang(self):
        """Figure 9: replace with an empty search string."""
        generator = GraphGenerator(seed=2)
        schema, graph = generator.generate_with_schema()
        engine = create_engine("memgraph", gate_scale=0.0)
        engine.load_graph(graph, schema)
        with pytest.raises(ResourceExhausted):
            engine.execute("WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0")

    def test_same_query_same_result(self):
        """Reproducibility: a faulty engine answers deterministically."""
        generator = GraphGenerator(seed=9)
        schema, graph = generator.generate_with_schema()
        engine = create_engine("falkordb", gate_scale=0.2)
        engine.load_graph(graph, schema)
        query = (
            "MATCH (a)-[r]-(b) WHERE a.id = 0 "
            "UNWIND [1, 2] AS x WITH a, b, x MATCH (c) WHERE c.id = 1 "
            "RETURN a.id AS v"
        )
        first = engine.execute(query)
        second = engine.execute(query)
        assert first.same_rows(second)

    def test_catalog_assignment(self):
        for name in ALL_ENGINE_NAMES:
            engine = create_engine(name)
            assert engine.faults == faults_for(name)
