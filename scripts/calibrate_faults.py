"""Fault-gate calibration harness.

The catalog's per-fault ``gate`` values (see ``repro/gdb/catalog.py``) were
chosen from the measurements this script produces: for each tool's query
generator, the fraction of generated queries whose *features* satisfy each
fault's trigger condition (before gating).  Given a target effective trigger
rate — roughly 1/400 queries for faults the paper reports as found within 24
hours, and roughly 1/8000 for the rest — the gate is simply

    gate = raw_rate / target_rate

Run:  python scripts/calibrate_faults.py [n_queries_per_tool]
"""

import random
import sys

from repro.baselines import (
    GDBMeterTester,
    GDsmithTester,
    GameraTester,
    GQTTester,
    GRevTester,
)
from repro.baselines.common import RandomQueryGenerator
from repro.core import QuerySynthesizer
from repro.core.runner import synthesizer_config_for
from repro.cypher.printer import print_query
from repro.gdb import create_engine, faults_for
from repro.gdb.faults import extract_features
from repro.graph import GraphGenerator


def feature_pool_for_gqs(target: str, n: int):
    engine = create_engine(target)
    config = synthesizer_config_for(engine)
    pool = []
    for seed in range(n):
        schema, graph = GraphGenerator(seed=seed).generate_with_schema()
        synthesizer = QuerySynthesizer(graph, rng=random.Random(seed), config=config)
        result = synthesizer.synthesize()
        pool.append(extract_features(result.query, print_query(result.query)))
    return pool


def feature_pool_for_baseline(tester, n: int):
    pool = []
    for seed in range(n):
        schema, graph = GraphGenerator(seed=seed).generate_with_schema()
        generator = RandomQueryGenerator(graph, random.Random(seed), tester.profile)
        query = generator.generate()
        pool.append(extract_features(query, print_query(query)))
    return pool


def main(n: int = 400) -> None:
    pools = {}
    for target in ("neo4j", "memgraph", "kuzu", "falkordb"):
        pools[f"GQS@{target}"] = feature_pool_for_gqs(target, n)
    for tester in (GDBMeterTester(), GameraTester(), GQTTester(), GRevTester(),
                   GDsmithTester([])):
        pools[tester.name] = feature_pool_for_baseline(tester, n)

    header = f"{'fault':16s} {'gate':>6s} " + " ".join(
        f"{name:>12s}" for name in pools
    )
    print(header)
    print("-" * len(header))
    for gdb in ("neo4j", "memgraph", "kuzu", "falkordb"):
        for fault in faults_for(gdb):
            raw_rates = [
                sum(1 for f in pool if fault.trigger(f)) / len(pool)
                for pool in pools.values()
            ]
            print(
                f"{fault.fault_id:16s} {fault.gate:6d} "
                + " ".join(f"{rate:12.3f}" for rate in raw_rates)
            )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
