"""Persisting and re-analyzing a campaign (offline bug triage).

Runs a short GQS campaign, saves it as JSON (the paper's bug-report
artifact: faulty engine, exact query, expected vs. actual), reloads it, and
re-renders the §5.3-style analyses from the stored records — no re-run
needed.

Run:  python examples/analyze_campaign.py [path]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.reporting import load_campaign, save_campaign
from repro.core.runner import GQSTester
from repro.experiments import figure13, figure14, figure15, render_histogram
from repro.gdb import create_engine


def main(path: str = "") -> None:
    target = Path(path) if path else Path(tempfile.gettempdir()) / "gqs_campaign.json"

    engine = create_engine("falkordb", gate_scale=0.05)
    tester = GQSTester()
    print("running a short campaign against FalkorDB...")
    result = tester.run(engine, budget_seconds=90.0, seed=2)
    save_campaign(result, target)
    print(
        f"saved {len(result.reports)} reports "
        f"({len(result.detected_faults)} distinct bugs) to {target}"
    )

    # A fresh process would start here: everything below uses only the file.
    loaded = load_campaign(target)
    records = loaded.trigger_records
    print(f"\nreloaded campaign: {loaded.queries_run} queries, "
          f"{len(records)} bug-triggering queries\n")
    if records:
        print(render_histogram(figure13(records),
                               "bugs by #cross-clause dependencies"))
        print()
        print(render_histogram(figure14(records), "bugs by #patterns"))
        print()
        print(render_histogram(figure15(records), "bugs by nesting depth"))
        sizes = [r.get("graph_nodes") for r in records if r.get("graph_nodes")]
        if sizes:
            print(
                f"\nall bugs triggered on graphs with <= {max(sizes)} nodes "
                f"(the paper's §5.1 small-graph observation)"
            )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "")
