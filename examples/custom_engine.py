"""Integrating a new GDB with GQS (paper §4: "Integrating Different GDBs").

The paper emphasizes that integrating a new database takes ~100 lines of
driver glue.  This example plays the role of a vendor: it defines a brand
new engine ("TinyGraph") by subclassing :class:`GraphDatabase`, plants a
single logic bug in it — DISTINCT projections drop one row when the query
also sorts — and lets GQS find that bug with no knowledge of the engine's
internals.

Run:  python examples/custom_engine.py
"""

import textwrap

from repro.core.runner import GQSTester
from repro.gdb import Dialect, GraphDatabase
from repro.gdb.faults import Fault, FaultEffect


# 1. Describe the dialect: TinyGraph is an in-memory engine with reference
#    semantics, no procedure support, and strict types.
TINYGRAPH = Dialect(
    name="tinygraph",
    display_name="TinyGraph",
    github_stars="12",
    initial_release=2025,
    tested_versions=("0.1.0",),
    loc="8K",
    enforces_rel_uniqueness=True,
    supports_call_procedures=False,
    base_query_cost=0.002,
)

# 2. Describe the bug we are pretending the vendor shipped.
PLANTED_BUG = Fault(
    fault_id="tinygraph-1",
    gdb="tinygraph",
    description="DISTINCT drops one record when combined with ORDER BY",
    category="logic",
    introduced_year=0.1,
    trigger=lambda f: f.has_distinct and f.has_order_by,
    effect=FaultEffect.drop_last_row,
    gate=3,
)


class TinyGraph(GraphDatabase):
    """A vendor's engine: the ~100-line integration the paper describes is
    mostly dialect configuration; the whole subclass is this small."""

    def __init__(self):
        super().__init__(TINYGRAPH, faults=[PLANTED_BUG])


def main() -> None:
    engine = TinyGraph()
    tester = GQSTester()
    print("hunting bugs in TinyGraph (2 simulated minutes)...")
    result = tester.run(engine, budget_seconds=120.0, seed=5)

    print(
        f"\n{result.queries_run} queries, {len(result.detected_faults)} distinct "
        f"bugs, {result.false_positive_count} false positives"
    )
    for record in result.trigger_records:
        print(f"\nfound {record['fault_id']}: {PLANTED_BUG.description}")
        print(
            f"  triggering query ({record['n_steps']} clauses, "
            f"{record['dependencies']} dependencies):"
        )
        print(textwrap.fill(record["query_text"], width=96,
                            initial_indent="  | ", subsequent_indent="  | ")[:900])
    assert "tinygraph-1" in result.detected_faults, "the planted bug must be found"
    print("\nthe planted bug was found without touching TinyGraph internals.")


if __name__ == "__main__":
    main()
