"""Using the reference engine as a small embedded graph database.

Recreates the paper's Figure 2 movie graph with Cypher write clauses, then
runs both Figure 2 queries — the simple MATCH-RETURN form and the complex
UNWIND/WITH form — and shows that they retrieve the same expected result.

Run:  python examples/movie_graph.py
"""

from repro.cypher import parse_query
from repro.engine import Executor
from repro.graph import PropertyGraph


SETUP = [
    "CREATE (u:USER {id: 0, name: 'Alice'})",
    "CREATE (m:MOVIE {id: 1, name: 'Longlegs', year: 2024, genre: ['Horror']})",
    "CREATE (m:MOVIE {id: 2, name: 'Notebook', year: 2004, "
    "genre: ['Drama', 'Romance']})",
    "MATCH (u:USER {name: 'Alice'}), (m:MOVIE {name: 'Longlegs'}) "
    "CREATE (u)-[r:LIKE {rating: 7}]->(m)",
    "MATCH (u:USER {name: 'Alice'}), (m:MOVIE {name: 'Notebook'}) "
    "CREATE (u)-[r:LIKE {rating: 10}]->(m)",
]

SIMPLE_QUERY = """
MATCH (p:USER)-[r:LIKE]->(m:MOVIE)
WHERE p.name = 'Alice' AND r.rating >= 8
RETURN m.name, m.year
"""

COMPLEX_QUERY = """
MATCH (p:USER)-[r:LIKE]->(m:MOVIE)
WHERE p.name = 'Alice' AND r.rating >= 8
UNWIND m.genre AS LikedGenre
WITH DISTINCT m.name AS MovieName, m, LikedGenre
RETURN DISTINCT MovieName, m.year AS year
"""


def main() -> None:
    graph = PropertyGraph()
    executor = Executor(graph)
    for statement in SETUP:
        executor.execute(parse_query(statement))
    print(f"loaded {graph}")

    simple = executor.execute(parse_query(SIMPLE_QUERY))
    complex_result = executor.execute(parse_query(COMPLEX_QUERY))
    print("\nFigure 2, simple query:")
    for row in simple.to_dicts():
        print("  ", row)
    print("Figure 2, complex query:")
    for row in complex_result.to_dicts():
        print("  ", row)

    values_simple = sorted(map(tuple, simple.rows))
    values_complex = sorted(map(tuple, complex_result.rows))
    assert values_simple == values_complex, "both forms must retrieve the same data"
    print("\nboth query forms retrieve the same expected result set.")

    # A taste of the wider surface: aggregation, procedures, ordering.
    for text in [
        "MATCH (u:USER)-[r:LIKE]->(m) RETURN u.name AS who, "
        "count(*) AS likes, avg(r.rating) AS avg_rating",
        "CALL db.labels() YIELD label RETURN label",
        "MATCH (m:MOVIE) RETURN m.name AS name ORDER BY m.year DESC",
    ]:
        result = executor.execute(parse_query(text))
        print(f"\n> {' '.join(text.split())}")
        for row in result.to_dicts():
            print("  ", row)


if __name__ == "__main__":
    main()
