"""Head-to-head comparison of GQS against the five baseline testers.

A miniature version of the paper's §5.4.4 experiment: every tool gets the
same simulated time budget against the same GDB, and the script reports how
many distinct bugs each found (plus false positives — the differential
baseline's weakness).

Run:  python examples/compare_testers.py [engine] [sim_minutes]
"""

import sys

from repro.experiments import make_tester, tester_supports
from repro.experiments.campaign import TESTER_NAMES, split_fault_counts
from repro.gdb import create_engine


def main(engine_name: str = "falkordb", sim_minutes: float = 2.0) -> None:
    budget = sim_minutes * 60.0
    print(
        f"comparing testers on {engine_name} "
        f"({sim_minutes:g} simulated minutes each)\n"
    )
    print(f"{'tester':>9s}  {'queries':>8s}  {'bugs':>5s}  {'logic':>5s}  {'FPs':>5s}")
    for tool in TESTER_NAMES:
        if not tester_supports(tool, engine_name):
            print(f"{tool:>9s}  {'(engine not supported)':>8s}")
            continue
        engine = create_engine(engine_name)
        tester = make_tester(tool, engine_name)
        result = tester.run(engine, budget_seconds=budget, seed=3)
        logic, other = split_fault_counts(result.detected_faults)
        print(
            f"{tool:>9s}  {result.queries_run:8d}  {logic + other:5d}  "
            f"{logic:5d}  {result.false_positive_count:5d}"
        )
    print(
        "\nGQS's ground-truth oracle flags every deviation it sees and never "
        "raises a false alarm; the differential baseline reports dialect "
        "differences as bugs, and the metamorphic baselines only notice "
        "faults that break their specific relations."
    )


if __name__ == "__main__":
    engine_name = sys.argv[1] if len(sys.argv) > 1 else "falkordb"
    minutes = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    main(engine_name, minutes)
