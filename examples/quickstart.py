"""Quickstart: the GQS loop in five steps.

Generates a random labeled property graph, establishes a ground truth,
synthesizes a complex Cypher query for it, executes the query on a simulated
GDB, and validates the result — the full workflow of the paper's Figure 3.

Run:  python examples/quickstart.py [seed]
"""

import random
import sys

from repro.core import QuerySynthesizer, check_result
from repro.core.runner import synthesizer_config_for
from repro.gdb import create_engine
from repro.graph import GraphGenerator


def main(seed: int = 7) -> None:
    # Step 1 — initialization: a random graph, loaded into the GDB under test.
    generator = GraphGenerator(seed=seed)
    schema, graph = generator.generate_with_schema()
    print(f"generated {graph} with labels {graph.labels()[:6]}...")

    engine = create_engine("falkordb")
    engine.load_graph(graph, schema)

    # Steps 2+3 — establish a ground truth and synthesize a query for it.
    synthesizer = QuerySynthesizer(
        graph, rng=random.Random(seed), config=synthesizer_config_for(engine)
    )
    synthesis = synthesizer.synthesize()

    from repro.cypher import print_query

    print("\nexpected result set (the ground truth):")
    for alias, value in zip(synthesis.expected.columns, synthesis.ground_truth.row()):
        print(f"  {alias} = {value!r}")
    print(f"\nsynthesized query ({synthesis.n_steps} clauses):")
    print(" ", print_query(synthesis.query))

    # Step 4 — execute and validate.
    try:
        actual = engine.execute(synthesis.query)
    except Exception as exc:
        print(f"\nengine failure (a non-logic bug!): {exc}")
        return
    verdict = check_result(synthesis.expected, actual)
    if verdict.passed:
        print("\nresult matches the ground truth — no logic bug this time.")
    else:
        fault = engine.last_fired_fault
        print(f"\nLOGIC BUG: {verdict.reason}")
        print(f"  expected rows: {synthesis.expected.rows}")
        print(f"  actual rows:   {actual.rows}")
        if fault is not None:
            print(f"  injected root cause: {fault.fault_id} — {fault.description}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
