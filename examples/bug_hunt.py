"""A short GQS bug-hunting campaign against one simulated GDB.

Runs the full testing loop (graph generation → ground truth → synthesis →
validation) against the FalkorDB simulator for a few simulated minutes and
prints every distinct bug found, including the bug-triggering query — the
artifact the paper's bug reports are built from.

Run:  python examples/bug_hunt.py [engine] [sim_minutes]
      engine in {neo4j, memgraph, kuzu, falkordb}
"""

import sys
import textwrap

from repro.core.runner import GQSTester
from repro.gdb import create_engine, faults_for


def main(engine_name: str = "falkordb", sim_minutes: float = 3.0) -> None:
    engine = create_engine(engine_name)
    tester = GQSTester()
    print(
        f"running GQS against {engine.dialect.display_name} for "
        f"{sim_minutes:g} simulated minutes..."
    )
    result = tester.run(engine, budget_seconds=sim_minutes * 60.0, seed=1)

    print(
        f"\n{result.queries_run} queries executed "
        f"({result.sim_seconds:.0f} simulated seconds); "
        f"{len(result.reports)} failing tests, "
        f"{len(result.detected_faults)} distinct bugs, "
        f"{result.false_positive_count} false positives."
    )

    catalog = {fault.fault_id: fault for fault in faults_for(engine_name)}
    for record in result.trigger_records:
        fault = catalog[record["fault_id"]]
        kind = "logic bug" if fault.is_logic else f"{fault.category} bug"
        print(f"\n=== {fault.fault_id} ({kind}) ===")
        print(f"    {fault.description}")
        print(
            f"    triggering query: {record['n_steps']} clauses, "
            f"{record['patterns']} patterns, depth {record['depth']}, "
            f"{record['dependencies']} cross-clause dependencies"
        )
        wrapped = textwrap.fill(
            record["query_text"], width=96,
            initial_indent="    | ", subsequent_indent="    | ",
        )
        print(wrapped[:1400])


if __name__ == "__main__":
    engine_name = sys.argv[1] if len(sys.argv) > 1 else "falkordb"
    minutes = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0
    main(engine_name, minutes)
